// Canonical state snapshots for the bounded model checker (src/verify/).
//
// Every simulator component exposes its protocol-relevant state through
// Component::snapshot_state(StateHasher&). The hasher keeps two FNV-1a
// channels:
//
//   mix()        — the FROZEN channel: protocol state a certified-quiescent
//                  skip must leave bit-identical (FSM states, credit
//                  counters, queue contents, pending deadlines). Two states
//                  with equal frozen digests have identical futures under
//                  identical environment actions.
//   accounting() — per-cycle counters that Component::skip_to legitimately
//                  replays across a skip (wait/busy/stall cycles). They
//                  differ between a skipped and a densely ticked range's
//                  *intermediate* observations only in when they settle,
//                  never in their settled value, and they grow with path
//                  length — so they are kept out of the frozen digest that
//                  the explorer deduplicates on.
//
// Pending DEADLINES (busy_until_, visible_at, notify_at_) are mixed through
// mix_cycle(), which canonicalizes them relative to a base cycle: the
// explorer hashes with base = now so that the same protocol situation
// reached at different absolute times deduplicates, and every deadline in
// the past collapses to one sentinel (a component only ever compares them
// against now with >=, so all past values are behaviourally identical).
// The wake-soundness audit hashes with base = 0 — absolute bit-stability is
// exactly the property it checks between two dense cycles.
//
// Lifetime counters (total samples pushed/popped/processed/delivered,
// per-stream completion logs) belong to NEITHER channel: they are
// observable statistics, but including them would make every state on a
// path unique and defeat deduplication. The differential stepper suites
// already pin them cycle-exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace acc::sim {

class StateHasher {
 public:
  /// `base`: cycle the snapshot is taken at (deadlines are canonicalized
  /// relative to it). Base 0 keeps deadlines absolute.
  explicit StateHasher(std::int64_t base = 0) : base_(base) {}

  [[nodiscard]] std::int64_t base() const { return base_; }

  /// Frozen channel: protocol state that must be bit-stable across a
  /// certified-quiescent skip.
  void mix(std::int64_t v) { frozen_ = fnv(frozen_, static_cast<std::uint64_t>(v)); }
  void mix(std::uint64_t v) { frozen_ = fnv(frozen_, v); }
  void mix(std::int32_t v) { mix(static_cast<std::int64_t>(v)); }
  void mix(std::uint32_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(bool b) { mix(static_cast<std::int64_t>(b ? 1 : 0)); }
  void mix(std::string_view s) {
    for (const char c : s) frozen_ = fnv(frozen_, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    frozen_ = fnv(frozen_, 0x1F);  // length delimiter
  }

  /// Frozen channel, deadline-valued: kNeverCycle keeps its sentinel, any
  /// deadline at or before `base` collapses to -1 (already expired — all
  /// such values are behaviourally identical), future deadlines become
  /// base-relative.
  void mix_cycle(std::int64_t c) {
    if (c == std::numeric_limits<std::int64_t>::max()) {
      mix(std::int64_t{-2});
    } else if (c <= base_) {
      mix(std::int64_t{-1});
    } else {
      mix(c - base_);
    }
  }

  /// Accounting channel: counters skip_to replays (kept out of frozen()).
  void accounting(std::int64_t v) {
    acct_ = fnv(acct_, static_cast<std::uint64_t>(v));
  }

  /// Digest of the frozen channel only (explorer deduplication key, wake
  /// audit stability check).
  [[nodiscard]] std::uint64_t frozen() const { return frozen_; }
  /// Digest over both channels.
  [[nodiscard]] std::uint64_t full() const { return fnv(frozen_, acct_); }

 private:
  static constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  [[nodiscard]] static std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kPrime;
    }
    return h;
  }

  std::int64_t base_;
  std::uint64_t frozen_ = kOffset;
  std::uint64_t acct_ = kOffset;
};

}  // namespace acc::sim
