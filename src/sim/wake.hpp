// Wake-notification plumbing for the wake-list stepper (System::run).
//
// The wake-list scheduler caches each component's event horizon and only
// re-queries it when the component itself ticked — or when somebody ELSE
// performed an action the frozen component must react to. Every such
// interaction point (a C-FIFO push/pop, a ring injection or delivery, a
// gateway's pipeline-idle callback, a fault-injector trigger) reports the
// interaction through this interface so a frozen component can never miss
// input. The System implements the hub; passive objects hold a nullable
// pointer, so the dense and global-horizon steppers (which never install a
// hub) are entirely unaffected.
//
// Safety rule the hub relies on (see docs/performance.md): scheduling a
// component EARLIER than necessary is always exact — an extra tick is dense
// behaviour — so wakes conservatively schedule "now" (or "next cycle" for
// slots already processed this cycle) rather than re-deriving a precise
// horizon mid-cycle.
#pragma once

#include <cstddef>
#include <cstdint>

namespace acc::sim {

class Component;
class Ring;
enum class FaultSite : int;

class WakeHub {
 public:
  virtual ~WakeHub() = default;

  /// `c` received input (or an unblocking callback) and its cached horizon
  /// may now be too late: reschedule it.
  virtual void wake(Component& c) = 0;

  /// A message was queued for injection into `r`: the ring has work.
  virtual void ring_activity(Ring& r) = 0;

  /// `r` ejected a message at `node` this tick: wake the draining tile.
  virtual void ring_delivery(Ring& r, std::int32_t node) = 0;

  /// A fault trigger moved `site`'s quiet window: horizons derived from
  /// FaultInjector::next_eligible(site) may have shifted (either way).
  virtual void fault_site_changed(FaultSite site) = 0;

  /// Batched-data-plane grant (ISSUE 8; see docs/performance.md): the
  /// earliest cycle at which any unit OTHER than the component occupying
  /// `self_slot` is scheduled to act, clamped to the end of the current
  /// run. A component that is mid-tick may execute operations at virtual
  /// cycles STRICTLY BELOW this bound as one batched run: the calendar
  /// proves nobody else can observe or perturb the interleaving. The bound
  /// is re-evaluated after every batched operation — any wake raised by
  /// the run itself (a watcher on a touched C-FIFO) collapses it, which is
  /// the abort rule that keeps batching bit-exact against dense stepping.
  /// Returns 0 ("no grant") outside an active wake-list cycle; the default
  /// keeps every other WakeHub implementation batch-free.
  [[nodiscard]] virtual std::int64_t quiet_until(std::size_t self_slot) const {
    (void)self_slot;
    return 0;
  }
};

}  // namespace acc::sim
