#include "sim/proc_tile.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "common/rng.hpp"

namespace acc::sim {

ProcessorTile::ProcessorTile(std::string name, Cycle replenish_period,
                             SchedulerPolicy policy)
    : name_(std::move(name)), period_(replenish_period), policy_(policy) {
  ACC_EXPECTS(replenish_period >= 1);
}

void ProcessorTile::add_task(Task t) {
  ACC_EXPECTS(t.invoke != nullptr);
  ACC_EXPECTS(t.budget >= 1);
  budget_left_.push_back(t.budget);
  invocations_.push_back(0);
  // Wake-list contract: the hint's C-FIFO dependencies wake this tile.
  for (CFifo* f : t.wake_on_push) f->add_push_watcher(this);
  for (CFifo* f : t.wake_on_pop) f->add_pop_watcher(this);
  // Batched invocation preconditions: replaying invoke() at virtual cycles
  // needs the hinted-task contract (probes that return 0 are side-effect
  // free), and every FIFO the task touches must observe with a lag >= 1 so
  // within-cycle ordering cannot matter (see CFifo::read_lag). A task pops
  // the FIFOs whose fill it waits on (their pops surface via write lag) and
  // pushes the ones whose space it waits on (via read lag).
  if (!t.next_ready) batch_capable_ = false;
  for (CFifo* f : t.wake_on_push)
    if (f->write_lag() < 1) batch_capable_ = false;
  for (CFifo* f : t.wake_on_pop)
    if (f->read_lag() < 1) batch_capable_ = false;
  tasks_.push_back(std::move(t));
}

bool ProcessorTile::wake_list_safe() const {
  // A hinted task with no declared wake FIFOs can have its hint
  // invalidated by a push/pop nobody reports; hint-less tasks are safe
  // (next_event pins them to the next cycle anyway).
  for (const Task& t : tasks_) {
    if (t.next_ready && t.wake_on_push.empty() && t.wake_on_pop.empty())
      return false;
  }
  return true;
}

std::int64_t ProcessorTile::invocations(std::size_t task) const {
  ACC_EXPECTS(task < invocations_.size());
  return invocations_[task];
}

void ProcessorTile::set_metrics(obs::MetricsRegistry* registry) {
  const std::string p = "proc." + name_;
  m_invocations_ = obs::make_counter(registry, p + ".invocations");
  m_busy_ = obs::make_counter(registry, p + ".busy_cycles");
}

bool ProcessorTile::attempt_invocation(Cycle t) {
  // Candidate order: round-robin rotation, or strict priority (stable by
  // registration order within a priority level). Only tasks still holding
  // budget are eligible — budget exhaustion suspends a task until the next
  // replenishment, giving the temporal isolation the dataflow analysis of
  // software tasks relies on (ref [18]).
  order_.clear();
  if (policy_ == SchedulerPolicy::kPriorityBudget) {
    for (std::size_t k = 0; k < tasks_.size(); ++k) order_.push_back(k);
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tasks_[a].priority > tasks_[b].priority;
                     });
  } else {
    for (std::size_t k = 0; k < tasks_.size(); ++k)
      order_.push_back((current_ + k) % tasks_.size());
  }
  for (const std::size_t idx : order_) {
    if (budget_left_[idx] <= 0) continue;
    const Cycle cost = tasks_[idx].invoke(t);
    if (cost > 0) {
      budget_left_[idx] -= cost;
      busy_until_ = t + cost;
      ++invocations_[idx];
      m_invocations_.add();
      m_busy_.add(cost);
      current_ = (idx + 1) % tasks_.size();
      return true;
    }
  }
  return false;
}

void ProcessorTile::tick(Cycle now) {
  if (tasks_.empty()) return;
  if (now >= next_replenish_) {
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      budget_left_[i] = tasks_[i].budget;
    next_replenish_ = now + period_;
  }
  if (now < busy_until_) {
    ++busy_cycles_;
    return;
  }
  if (!attempt_invocation(now)) return;
  ++busy_cycles_;  // the invocation cycle itself, as dense counts it
  if (!batch_capable_) return;
  // Batched continuation (ISSUE 8): while the wake hub certifies every
  // other component sleeps past the cycle where this invocation completes,
  // the next scheduling decision is already determined — run it now at its
  // virtual cycle instead of waking up again. Each iteration replays the
  // replenishment grid up to the virtual cycle, re-reads the grant (our
  // own FIFO traffic may have collapsed it), and charges budgets, counters
  // and metrics exactly as a dense tick at that cycle would. busy_cycles_
  // is deliberately untouched: the virtual invocation cycles all lie
  // strictly below the final busy_until_, so the stepper's later skip_to
  // replay accounts every one of them exactly once.
  std::int64_t extra = 0;
  for (;;) {
    const Cycle vt = busy_until_;
    if (batch_quiet_until() <= vt) break;
    while (next_replenish_ <= vt) {
      for (std::size_t i = 0; i < tasks_.size(); ++i)
        budget_left_[i] = tasks_[i].budget;
      next_replenish_ += period_;
    }
    if (!attempt_invocation(vt)) break;
    ++extra;
  }
  if (extra > 0) note_batch_run(extra + 1);
}

Cycle ProcessorTile::next_event(Cycle now) const {
  if (tasks_.empty()) return kNeverCycle;
  if (now < busy_until_) return busy_until_;  // invocation in progress
  Cycle h = kNeverCycle;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    // Earliest cycle task i could run: its data/space readiness hint,
    // further deferred to the next replenishment while its budget is spent.
    Cycle t = tasks_[i].next_ready
                  ? std::max(tasks_[i].next_ready(now), now + 1)
                  : now + 1;
    if (budget_left_[i] <= 0) t = std::max(t, next_replenish_);
    h = std::min(h, t);
  }
  return h;
}

void ProcessorTile::skip_to(Cycle from, Cycle to) {
  if (tasks_.empty()) return;
  // Replay the replenishment grid: dense ticking refills at exactly
  // next_replenish_, next_replenish_ + period, ... — preserve that phase.
  while (next_replenish_ < to) {
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      budget_left_[i] = tasks_[i].budget;
    next_replenish_ += period_;
  }
  const Cycle busy_end = std::min(to, busy_until_);
  if (busy_end > from) busy_cycles_ += busy_end - from;
}

SourceTile::SourceTile(std::string name, CFifo& out, std::vector<Flit> samples,
                       Cycle period, Cycle start_at)
    : name_(std::move(name)),
      out_(out),
      samples_(std::move(samples)),
      period_(period),
      start_at_(start_at),
      next_emit_(start_at) {
  ACC_EXPECTS(period >= 1);
}

void SourceTile::set_jitter(Cycle max_jitter, std::uint64_t seed) {
  ACC_EXPECTS(max_jitter >= 0);
  max_jitter_ = max_jitter;
  jitter_state_ = seed;
  // Re-derive the first emission time under jitter.
  if (next_ == 0) {
    acc::SplitMix64 rng(jitter_state_);
    next_emit_ = start_at_ + rng.uniform(0, max_jitter_);
    jitter_state_ = rng.next();
  }
}

void SourceTile::tick(Cycle now) {
  if (next_ >= samples_.size() || now < next_emit_) return;
  // Batched emission (ISSUE 8): on the jitter-free grid the upcoming
  // release times are now, now + period, now + 2*period, ... — exactly a
  // push_run. The run self-limits to the batching grant, the FIFO's
  // visible space and its read lag, so under the dense and global-horizon
  // steppers (no grant) it degenerates to the single scalar push. Jittered
  // sources stay scalar: each release consumes an RNG draw whose order the
  // grid cannot reproduce.
  if (max_jitter_ == 0 && now == next_emit_) {
    const std::span<const Flit> rest(samples_.data() + next_,
                                     samples_.size() - next_);
    const std::size_t k = out_.push_run(now, period_, rest, this);
    if (k > 0) {
      next_ += k;
      emitted_ += static_cast<std::int64_t>(k);
      m_emitted_.add(static_cast<std::int64_t>(k));
      next_emit_ = nominal_emit_time(next_);
      return;
    }
    // k == 0: no space visible at `now` — fall through to the drop path.
  }
  // Hard real-time: the sample leaves the antenna now; it either fits in
  // the FIFO or it is gone.
  if (out_.can_push(now)) {
    out_.push(now, samples_[next_]);
    ++emitted_;
    m_emitted_.add();
  } else {
    ++dropped_;
    m_dropped_.add();
  }
  ++next_;
  // Next release: nominal grid plus bounded jitter (never cumulative).
  next_emit_ = nominal_emit_time(next_);
  if (max_jitter_ > 0) {
    acc::SplitMix64 rng(jitter_state_);
    next_emit_ += rng.uniform(0, max_jitter_);
    jitter_state_ = rng.next();
  }
}

void SourceTile::set_metrics(obs::MetricsRegistry* registry) {
  const std::string p = "source." + name_;
  m_emitted_ = obs::make_counter(registry, p + ".emitted");
  m_dropped_ = obs::make_counter(registry, p + ".dropped");
}

Cycle SourceTile::next_event(Cycle now) const {
  if (next_ >= samples_.size()) return kNeverCycle;
  return std::max(next_emit_, now + 1);
}

SinkTile::SinkTile(std::string name, CFifo& in, Cycle period,
                   std::int64_t prefill)
    : name_(std::move(name)), in_(in), period_(period), prefill_(prefill) {
  ACC_EXPECTS(period >= 1);
  ACC_EXPECTS(prefill >= 1);
  // Pre-start the horizon is the prefill visibility deadline: each push
  // must wake us. After start the DAC grid self-schedules.
  in_.add_push_watcher(this);
}

void SinkTile::tick(Cycle now) {
  if (!started_) {
    if (in_.when_fill_visible(prefill_, now) <= now) {
      started_ = true;
      next_due_ = now;
    } else {
      return;
    }
  }
  if (now < next_due_) return;
  if (in_.can_pop(now)) {
    received_.push_back(in_.pop(now));
    timestamps_.push_back(now);
    m_received_.add();
  } else {
    ++underruns_;  // DAC starved: audible glitch
    m_underruns_.add();
  }
  next_due_ += period_;
  // Batched continuation (ISSUE 8): drain every future DAC deadline the
  // batching grant covers in one pop_run. The first virtual pop is at
  // next_due_ (strictly ahead of `now` unless we are catching up late, in
  // which case the grid stays per-cycle), checked against the grant here
  // because pop_run only re-checks from the second token on. A write lag
  // of zero would let the producer see a virtual pop in its own cycle, so
  // such FIFOs never batch. If the run stops early (nothing visible), the
  // next real tick at next_due_ counts the underrun exactly as dense does.
  const Cycle vt = next_due_;
  if (vt <= now || in_.write_lag() < 1) return;
  if (vt >= batch_quiet_until()) return;
  const std::size_t k =
      in_.pop_run(vt, period_, std::numeric_limits<std::size_t>::max(),
                  &received_, &timestamps_, this);
  if (k > 0) {
    m_received_.add(static_cast<std::int64_t>(k));
    next_due_ += period_ * static_cast<Cycle>(k);
  }
}

void SinkTile::set_metrics(obs::MetricsRegistry* registry) {
  const std::string p = "sink." + name_;
  m_received_ = obs::make_counter(registry, p + ".received");
  m_underruns_ = obs::make_counter(registry, p + ".underruns");
}

Cycle SinkTile::next_event(Cycle now) const {
  if (!started_) {
    const Cycle h = in_.when_fill_visible(prefill_, now);
    return h == kNeverCycle ? kNeverCycle : std::max(h, now + 1);
  }
  return std::max(next_due_, now + 1);
}

}  // namespace acc::sim
