#include "sim/accel_tile.hpp"

namespace acc::sim {

AcceleratorTile::AcceleratorTile(std::string name, DualRing& ring,
                                 std::int32_t node, Cycle cycles_per_sample,
                                 std::int64_t ni_capacity)
    : name_(std::move(name)),
      ring_(ring),
      node_(node),
      cycles_per_sample_(cycles_per_sample),
      ni_capacity_(ni_capacity) {
  ACC_EXPECTS(cycles_per_sample >= 1);
  ACC_EXPECTS(ni_capacity >= 1);
}

void AcceleratorTile::register_context(StreamId id,
                                       std::unique_ptr<accel::StreamKernel> k) {
  ACC_EXPECTS(k != nullptr);
  ACC_EXPECTS_MSG(contexts_.find(id) == contexts_.end(),
                  "duplicate context for stream");
  contexts_[id] = std::move(k);
  if (active_ < 0) {
    active_ = id;
    active_kernel_ = contexts_[id].get();
  }
}

void AcceleratorTile::unregister_context(StreamId id) {
  ACC_EXPECTS_MSG(contexts_.count(id) == 1, "unknown stream context");
  ACC_EXPECTS_MSG(drained(), "context removal on a non-drained accelerator");
  contexts_.erase(id);
  if (active_ == id) {
    if (contexts_.empty()) {
      active_ = -1;
      active_kernel_ = nullptr;
    } else {
      active_ = contexts_.begin()->first;
      active_kernel_ = contexts_.begin()->second.get();
    }
  }
  // Frozen state (the contexts_ snapshot) changed from outside our own
  // tick; wake so cached horizons and the V05 audit observe the mutation.
  request_wake();
}

void AcceleratorTile::swap_context(StreamId id, Cycle now) {
  ACC_EXPECTS_MSG(contexts_.count(id) == 1, "unknown stream context");
  ACC_EXPECTS_MSG(drained(), "context switch on a non-drained accelerator");
  // A drained tile has consumed every queued input, and the precompute
  // cache drains in lockstep with the input queue — so the kernel's
  // mutable state is exactly the per-sample state here.
  ACC_CHECK_MSG(pre_counts_.empty() && pre_samples_.empty(),
                name_ + ": precompute cache survived a drain");
  active_ = id;
  active_kernel_ = contexts_.at(id).get();
  m_ctx_switches_.add();
  if (trace_ != nullptr) trace_->record(now, name_, "ctx.switch", id);
  // The switch mutates our frozen state from the entry-gateway's tick while
  // we may be parked on kNeverCycle. Our horizon is genuinely unchanged (a
  // drained tile stays parked until data arrives, which routes its own
  // wake), but waking early is always exact — and it keeps the mutation
  // visible to the wake-soundness audit (V05).
  request_wake();
}

void AcceleratorTile::set_metrics(obs::MetricsRegistry* registry) {
  const std::string prefix = "tile." + name_;
  m_samples_ = obs::make_counter(registry, prefix + ".samples");
  m_busy_ = obs::make_counter(registry, prefix + ".busy_cycles");
  m_ctx_switches_ = obs::make_counter(registry, prefix + ".ctx_switches");
  m_batch_blocks_ = obs::make_counter(registry, prefix + ".batch_blocks");
  m_batch_samples_ = obs::make_counter(registry, prefix + ".batch_samples");
}

std::size_t AcceleratorTile::context_words() const {
  ACC_EXPECTS(active_ >= 0);
  return contexts_.at(active_)->state_words();
}

void AcceleratorTile::set_upstream(std::int32_t node, std::uint32_t tag) {
  upstream_node_ = node;
  upstream_tag_ = tag;
}

void AcceleratorTile::set_downstream(std::int32_t node, std::uint32_t tag,
                                     std::int64_t credits) {
  downstream_node_ = node;
  downstream_tag_ = tag;
  credits_ = credits;
}

void AcceleratorTile::drain_network(Cycle) {
  // has_ejected is an inline O(1) emptiness check; most ticks of a
  // streaming phase deliver nothing, so skipping the drains outright keeps
  // the two ring consultations off the per-tick hot path.
  if (ring_.data().has_ejected(node_)) {
    ring_.data().drain_into(node_, rx_);
    for (const RingMsg& m : rx_) {
      ACC_CHECK_MSG(static_cast<std::int64_t>(input_.size()) < ni_capacity_,
                    name_ + ": NI input overflow (credit protocol violated)");
      input_.push_back(m.payload);
    }
  }
  if (ring_.credit().has_ejected(node_))
    credits_ += ring_.credit().drain_count(node_);
}

void AcceleratorTile::tick(Cycle now) {
  drain_network(now);

  // Return credits owed to the upstream producer (retry on ring pressure).
  while (pending_credit_returns_ > 0 && upstream_node_ >= 0) {
    RingMsg credit;
    credit.dst = upstream_node_;
    credit.tag = upstream_tag_;
    if (!ring_.credit().try_inject(node_, credit)) break;
    --pending_credit_returns_;
  }

  // Core pipeline: finish the in-flight sample.
  if (core_busy_ && now >= core_done_at_) {
    core_busy_ = false;
    for (const CQ16& s : scratch_out_) pending_out_.push_back(pack_sample(s));
    scratch_out_.clear();
    ++processed_;
    m_samples_.add();
    m_busy_.add(cycles_per_sample_);
  }

  // Start the next sample: needs input and room for the worst-case output
  // burst (kernels emit at most one sample per input here).
  if (!core_busy_ && !input_.empty() &&
      static_cast<std::int64_t>(pending_out_.size()) < ni_capacity_) {
    ACC_CHECK_MSG(active_ >= 0, name_ + ": no active context");
    // Several inputs queued with no cache: run the whole queue through the
    // kernel's SoA block path now and serve later starts from the cache
    // (see the cache invariant notes in accel_tile.hpp).
    if (pre_counts_.empty() && input_.size() > 1) {
      const std::size_t m = input_.size();
      block_in_.clear();
      for (const Flit q : input_) block_in_.push_back(unpack_sample(q));
      block_out_.resize(m);
      block_counts_.resize(m);
      const std::size_t produced = active_kernel_->process_block(
          block_in_, block_out_, block_counts_.data());
      for (std::size_t i = 0; i < m; ++i)
        pre_counts_.push_back(block_counts_[i]);
      for (std::size_t i = 0; i < produced; ++i)
        pre_samples_.push_back(block_out_[i]);
      m_batch_blocks_.add();
      m_batch_samples_.add(static_cast<std::int64_t>(m));
    }
    const Flit f = input_.front();
    input_.pop_front();
    ++pending_credit_returns_;  // slot freed: credit goes back upstream
    if (!pre_counts_.empty()) {
      std::uint8_t c = pre_counts_.front();
      pre_counts_.pop_front();
      while (c-- > 0) {
        scratch_out_.push_back(pre_samples_.front());
        pre_samples_.pop_front();
      }
    } else {
      active_kernel_->push(unpack_sample(f), scratch_out_);
    }
    core_busy_ = true;
    core_done_at_ = now + cycles_per_sample_;
  }
  if (core_busy_) ++busy_cycles_;

  // Forward finished samples downstream, consuming credits.
  while (!pending_out_.empty() && credits_ > 0 && downstream_node_ >= 0) {
    RingMsg m;
    m.dst = downstream_node_;
    m.tag = downstream_tag_;
    m.payload = pending_out_.front();
    if (!ring_.data().try_inject(node_, m)) break;
    pending_out_.pop_front();
    --credits_;
  }
}

Cycle AcceleratorTile::next_event(Cycle now) const {
  // Ejected ring messages await our drain: tick next cycle to pick them
  // up. This pin is what lets an otherwise-idle Ring fast-forward across
  // in-flight hop cycles without stranding a delivered message (the ring's
  // own next_event no longer covers the pickup).
  if (ring_.data().has_ejected(node_) || ring_.credit().has_ejected(node_))
    return now + 1;
  Cycle h = kNeverCycle;
  if (core_busy_) {
    h = std::min(h, core_done_at_);
  } else if (!input_.empty() &&
             static_cast<std::int64_t>(pending_out_.size()) < ni_capacity_) {
    h = now + 1;  // next sample starts on the next tick
  }
  if (!pending_out_.empty() && credits_ > 0 && downstream_node_ >= 0)
    h = now + 1;  // forward blocked only on injection backpressure: retry
  if (pending_credit_returns_ > 0 && upstream_node_ >= 0)
    h = now + 1;  // credit return blocked on injection backpressure: retry
  return h == kNeverCycle ? kNeverCycle : std::max(h, now + 1);
}

void AcceleratorTile::skip_to(Cycle from, Cycle to) {
  if (core_busy_) busy_cycles_ += to - from;
}

void AcceleratorTile::snapshot_state(StateHasher& h) const {
  h.mix(static_cast<std::int64_t>(active_));
  h.mix(credits_);
  h.mix(static_cast<std::int64_t>(input_.size()));
  for (const Flit f : input_) h.mix(f);
  h.mix(static_cast<std::int64_t>(pending_out_.size()));
  for (const Flit f : pending_out_) h.mix(f);
  h.mix(core_busy_);
  if (core_busy_) h.mix_cycle(core_done_at_);
  h.mix(static_cast<std::int64_t>(scratch_out_.size()));
  for (const CQ16& s : scratch_out_) {
    h.mix(static_cast<std::int64_t>(s.re.raw()));
    h.mix(static_cast<std::int64_t>(s.im.raw()));
  }
  h.mix(pending_credit_returns_);
  // Kernel contexts: a stateful kernel's mutable words (delay lines,
  // decimation counters) determine future outputs, so they are frozen
  // state. std::map iterates in StreamId order — deterministic.
  h.mix(static_cast<std::int64_t>(contexts_.size()));
  for (const auto& [id, kernel] : contexts_) {
    h.mix(static_cast<std::int64_t>(id));
    const std::vector<std::int32_t> words = kernel->save_state();
    h.mix(static_cast<std::int64_t>(words.size()));
    for (const std::int32_t w : words) h.mix(static_cast<std::int64_t>(w));
  }
  h.mix(static_cast<std::int64_t>(pre_counts_.size()));
  for (const std::uint8_t c : pre_counts_) h.mix(static_cast<std::int64_t>(c));
  h.mix(static_cast<std::int64_t>(pre_samples_.size()));
  for (const CQ16& s : pre_samples_) {
    h.mix(static_cast<std::int64_t>(s.re.raw()));
    h.mix(static_cast<std::int64_t>(s.im.raw()));
  }
  h.accounting(busy_cycles_);
}

}  // namespace acc::sim
