#include "sim/trace.hpp"

#include <sstream>

namespace acc::sim {

std::vector<TraceEvent> TraceLog::from(std::string_view source) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.source == source) out.push_back(e);
  return out;
}

std::vector<TraceEvent> TraceLog::of(std::string_view event) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.event == event) out.push_back(e);
  return out;
}

std::string TraceLog::to_csv() const {
  std::ostringstream os;
  os << "cycle,source,event,value\n";
  for (const TraceEvent& e : events_)
    os << e.cycle << ',' << e.source << ',' << e.event << ',' << e.value
       << '\n';
  return os.str();
}

}  // namespace acc::sim
