#include "sim/trace.hpp"

#include <sstream>

namespace acc::sim {

std::vector<TraceEvent> TraceLog::from(std::string_view source) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.source == source) out.push_back(e);
  return out;
}

std::vector<TraceEvent> TraceLog::of(std::string_view event) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.event == event) out.push_back(e);
  return out;
}

std::string TraceLog::to_csv() const {
  std::ostringstream os;
  os << "cycle,source,event,value\n";
  for (const TraceEvent& e : events_)
    os << e.cycle << ',' << e.source << ',' << e.event << ',' << e.value
       << '\n';
  if (dropped_ > 0) {
    const Cycle last = events_.empty() ? 0 : events_.back().cycle;
    os << last << ",trace,truncated," << dropped_ << '\n';
  }
  return os.str();
}

}  // namespace acc::sim
