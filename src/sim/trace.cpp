#include "sim/trace.hpp"

namespace acc::sim {

std::vector<TraceEvent> TraceLog::from(std::string_view source) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.source == source) out.push_back(e);
  return out;
}

std::vector<TraceEvent> TraceLog::of(std::string_view event) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.event == event) out.push_back(e);
  return out;
}

std::string TraceLog::to_csv() const {
  // Single pre-sized buffer + appends: one allocation for typical logs
  // instead of the stream's repeated grow-and-copy.
  std::string out;
  std::size_t bytes = 32;
  for (const TraceEvent& e : events_)
    bytes += e.source.size() + e.event.size() + 48;
  out.reserve(bytes);
  out += "cycle,source,event,value\n";
  for (const TraceEvent& e : events_) {
    out += std::to_string(e.cycle);
    out += ',';
    out += e.source;
    out += ',';
    out += e.event;
    out += ',';
    out += std::to_string(e.value);
    out += '\n';
  }
  if (dropped_ > 0) {
    const Cycle last = events_.empty() ? 0 : events_.back().cycle;
    out += std::to_string(last);
    out += ",trace,truncated,";
    out += std::to_string(dropped_);
    out += '\n';
  }
  return out;
}

}  // namespace acc::sim
