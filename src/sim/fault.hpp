// Deterministic, seed-driven fault injection for the MPSoC simulator.
//
// The paper's guarantees rest on the CSDF abstraction being CONSERVATIVE
// ("the-earlier-the-better") for the real interconnect: bounded timing
// perturbations must never push a block past its analysis bound plus the
// slack that covers them. This module makes that claim testable. Components
// consult one shared FaultInjector at well-defined hook points:
//
//   kRingLink       Ring::tick        whole-ring stall windows (link-level
//                                     jitter/contention; both rings of the
//                                     DualRing consult the same site)
//   kConfigBus      EntryGateway      extra contention delay on the context
//                                     save/restore bus transfer (R_s)
//   kExitNotify     ExitGateway       delayed — or dropped — pipeline-idle
//                                     notification to the entry-gateway
//   kCreditWithhold CFifo::push/pop   transient withholding of a C-FIFO
//                                     counter update (the software credit),
//                                     delaying visibility to the other side
//
// Every decision derives from SplitMix64 streams keyed by (seed, site) and
// advanced once per *triggering opportunity* — never from wall time or
// thread identity — so a given seed produces a bit-identical fault pattern
// on every run and under every --jobs setting. See docs/robustness.md.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/ring.hpp"

namespace acc::sim {

class WakeHub;

enum class FaultSite : int {
  kRingLink = 0,
  kConfigBus = 1,
  kExitNotify = 2,
  kCreditWithhold = 3,
};
inline constexpr int kNumFaultSites = 4;

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// Per-site fault law. All faults are DELAYS (bounded by max_delay) except
/// the exit-notification, which may additionally be DROPPED outright —
/// modelling a lost interrupt that only the gateway's timeout/retry policy
/// can recover from.
struct FaultSpec {
  /// Chance that an eligible consult triggers a delay.
  double probability = 0.0;
  /// Triggered delays are uniform in [1, max_delay] cycles.
  Cycle max_delay = 0;
  /// kExitNotify only: chance the notification is lost entirely (checked
  /// before the delay law).
  double drop_probability = 0.0;
  /// Rate limiter: after a trigger, the site stays quiet for this many
  /// cycles. Keeps per-window fault totals boundable (worst_case_block_delay).
  Cycle min_spacing = 0;
  /// Faults only fire inside [window_from, window_until).
  Cycle window_from = 0;
  Cycle window_until = std::numeric_limits<Cycle>::max();

  [[nodiscard]] bool active() const {
    return probability > 0.0 || drop_probability > 0.0;
  }
};

struct FaultSiteStats {
  std::int64_t consults = 0;  // eligible opportunities seen
  std::int64_t injected = 0;  // delays actually triggered
  std::int64_t dropped = 0;   // events lost (kExitNotify)
  Cycle delay_cycles = 0;     // sum of injected delays
  Cycle max_delay_seen = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed);

  void configure(FaultSite site, const FaultSpec& spec);
  [[nodiscard]] const FaultSpec& spec(FaultSite site) const;

  /// Hook point: extra delay in cycles (0 = no fault this time). Advances
  /// the site's deterministic stream on every eligible consult.
  [[nodiscard]] Cycle delay(FaultSite site, Cycle now);

  /// Drop-style hook (kExitNotify): true = the event is lost.
  [[nodiscard]] bool drop(FaultSite site, Cycle now);

  /// Earliest cycle >= now at which delay(site, ...) would be an ELIGIBLE
  /// consult (advancing the site's RNG stream), or kNeverCycle if no such
  /// cycle exists. Mirrors eligible(): inactive specs, closed windows and
  /// the post-trigger quiet period are ineligible — delay() early-outs on
  /// those without touching RNG or stats, which is what lets the
  /// event-horizon stepper skip through them without desyncing the
  /// deterministic fault pattern (see System::run).
  [[nodiscard]] Cycle next_eligible(FaultSite site, Cycle now) const;

  [[nodiscard]] const FaultSiteStats& stats(FaultSite site) const;
  [[nodiscard]] std::int64_t total_injected() const;
  [[nodiscard]] std::int64_t total_dropped() const;
  [[nodiscard]] Cycle total_delay_cycles() const;
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Conservative bound on the fault-induced inflation of one block's
  /// service window of `nominal_service` cycles moving `samples` samples:
  /// one config-bus delay per admission, one notification delay per block,
  /// a per-sample credit-withhold delay on each C-FIFO transfer, and one
  /// ring stall window per min_spacing (both rings). Dropped notifications
  /// are NOT covered — their recovery cost is bounded by the gateway's
  /// retry policy instead. Feed the result to ConformanceOptions::
  /// fault_slack: injected delays within this envelope must never produce a
  /// genuine bound breach if the analysis is conservative.
  [[nodiscard]] Cycle worst_case_block_delay(Cycle nominal_service,
                                             std::int64_t samples) const;

  /// Wake-list plumbing (see sim/wake.hpp): every delay() trigger moves
  /// the site's quiet window, which shifts horizons derived from
  /// next_eligible — report it so cached horizons get re-derived. Null
  /// (the default) under the dense / global-horizon steppers.
  void set_wake_hub(WakeHub* hub) { hub_ = hub; }

  /// Opt-in metrics: fault.<site>.{consults,injected,dropped,delay_cycles}
  /// per site, mirroring the FaultSiteStats increments. The stats are
  /// already proven bit-identical across steppers (conformance-under-faults
  /// suite), so the mirrored counters inherit that guarantee.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct SiteState {
    FaultSpec spec;
    SplitMix64 rng{0};
    Cycle quiet_until = 0;
    FaultSiteStats stats;
    obs::Counter m_consults;
    obs::Counter m_injected;
    obs::Counter m_dropped;
    obs::Counter m_delay_cycles;
  };

  [[nodiscard]] bool eligible(SiteState& s, Cycle now) const;

  std::uint64_t seed_;
  std::array<SiteState, kNumFaultSites> sites_;
  WakeHub* hub_ = nullptr;
};

}  // namespace acc::sim
