#include "sim/cfifo_protocol.hpp"

namespace acc::sim {

CFifoProtocol::CFifoProtocol(std::string name, std::int64_t capacity,
                             Cycle counter_latency)
    : name_(std::move(name)), capacity_(capacity), latency_(counter_latency) {
  ACC_EXPECTS(capacity >= 1);
  ACC_EXPECTS(counter_latency >= 0);
}

void CFifoProtocol::deliver_updates(Cycle now) {
  while (!write_updates_.empty() && write_updates_.front().first <= now) {
    write_shadow_at_consumer_ = write_updates_.front().second;
    write_updates_.pop_front();
  }
  while (!read_updates_.empty() && read_updates_.front().first <= now) {
    read_shadow_at_producer_ = read_updates_.front().second;
    read_updates_.pop_front();
  }
}

std::int64_t CFifoProtocol::producer_space(Cycle now) {
  deliver_updates(now);
  return capacity_ - (write_count_ - read_shadow_at_producer_);
}

void CFifoProtocol::write(Cycle now, Flit value) {
  ACC_EXPECTS_MSG(can_write(now),
                  "C-FIFO '" + name_ + "' write without provable space");
  // Posted data write lands in consumer memory; the counter update follows
  // it on the in-order interconnect, so once the consumer's shadow shows
  // this write, the data is guaranteed present.
  data_.push_back(value);
  ++write_count_;
  write_updates_.emplace_back(now + latency_, write_count_);
}

std::int64_t CFifoProtocol::consumer_fill(Cycle now) {
  deliver_updates(now);
  return write_shadow_at_consumer_ - read_count_;
}

Flit CFifoProtocol::read(Cycle now) {
  ACC_EXPECTS_MSG(can_read(now),
                  "C-FIFO '" + name_ + "' read without provable data");
  ACC_CHECK(!data_.empty());
  const Flit v = data_.front();
  data_.pop_front();
  ++read_count_;
  read_updates_.emplace_back(now + latency_, read_count_);
  return v;
}

}  // namespace acc::sim
