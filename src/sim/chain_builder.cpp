#include "sim/chain_builder.hpp"

namespace acc::sim {

void GatewayChain::add_stream(
    const StreamRoute& route,
    std::vector<std::unique_ptr<accel::StreamKernel>> kernels) {
  ACC_EXPECTS_MSG(kernels.size() == accels.size(),
                  "one kernel per accelerator tile required");
  for (std::size_t i = 0; i < accels.size(); ++i)
    accels[i]->register_context(route.id, std::move(kernels[i]));
  entry->add_stream(route);
}

GatewayChain build_gateway_chain(System& sys, const ChainConfig& cfg) {
  ACC_EXPECTS(!cfg.accel_cycles.empty());
  const auto n_accels = static_cast<std::int32_t>(cfg.accel_cycles.size());
  ACC_EXPECTS_MSG(cfg.base_node >= 0 &&
                      cfg.base_node + n_accels + 1 < sys.ring().data().nodes(),
                  "ring too small for this chain");

  GatewayChain chain;
  const std::int32_t entry_node = cfg.base_node;
  const std::int32_t exit_node = cfg.base_node + n_accels + 1;

  // Accelerator tiles at base+1 .. base+n, tag = position within the chain.
  for (std::int32_t i = 0; i < n_accels; ++i) {
    chain.accels.push_back(&sys.add<AcceleratorTile>(
        cfg.name + ".acc" + std::to_string(i), sys.ring(),
        cfg.base_node + 1 + i, cfg.accel_cycles[static_cast<std::size_t>(i)],
        cfg.ni_capacity));
  }
  auto& exit = sys.add<ExitGateway>(cfg.name + ".exit", sys.ring(), exit_node,
                                    cfg.delta, cfg.ni_capacity,
                                    cfg.exit_notify_lag);
  auto& entry = sys.add<EntryGateway>(cfg.name + ".entry", sys.ring(),
                                      entry_node, cfg.epsilon,
                                      cfg.base_node + 1, /*first_tag=*/1,
                                      cfg.ni_capacity);

  // Wire upstream/downstream hop by hop (tags are informational; routing is
  // by node).
  for (std::int32_t i = 0; i < n_accels; ++i) {
    AcceleratorTile* a = chain.accels[static_cast<std::size_t>(i)];
    a->set_upstream(i == 0 ? entry_node : cfg.base_node + i,
                    static_cast<std::uint32_t>(i + 1));
    const std::int32_t down =
        i + 1 < n_accels ? cfg.base_node + 2 + i : exit_node;
    a->set_downstream(down, static_cast<std::uint32_t>(i + 2),
                      cfg.ni_capacity);
  }
  exit.set_upstream(cfg.base_node + n_accels,
                    static_cast<std::uint32_t>(n_accels + 1));
  entry.set_chain(chain.accels);
  entry.set_exit(&exit);
  exit.set_entry(&entry);

  if (cfg.trace != nullptr) {
    entry.set_trace(cfg.trace);
    exit.set_trace(cfg.trace);
    for (AcceleratorTile* a : chain.accels) a->set_trace(cfg.trace);
  }
  if (cfg.fault != nullptr) {
    entry.set_fault(cfg.fault);
    exit.set_fault(cfg.fault);
    sys.ring().set_fault(cfg.fault);
  }
  if (cfg.metrics != nullptr) {
    entry.set_metrics(cfg.metrics);
    exit.set_metrics(cfg.metrics);
    for (AcceleratorTile* a : chain.accels) a->set_metrics(cfg.metrics);
    sys.ring().set_metrics(cfg.metrics);
    if (cfg.fault != nullptr) cfg.fault->set_metrics(cfg.metrics);
  }
  if (cfg.retry.notify_timeout > 0) entry.set_retry_policy(cfg.retry);

  chain.entry = &entry;
  chain.exit = &exit;
  return chain;
}

}  // namespace acc::sim
