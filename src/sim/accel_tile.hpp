// Accelerator tile: a context-switchable stream accelerator behind a
// network interface with credit-based flow control (paper Fig. 3b).
//
// The tile consumes data flits from its upstream producer (entry-gateway or
// a previous accelerator), runs its currently-selected per-stream kernel at
// `cycles_per_sample`, and forwards results downstream when it holds
// credits for the consumer's NI buffer. Credits are returned to the
// upstream over the credit ring whenever the tile pops a flit out of its
// input FIFO. Context switches (selecting another stream's kernel state)
// are performed by the entry-gateway via swap_context(); the accelerator
// itself "has no notion of other aspects of the system".
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/kernel.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"
#include "sim/ring.hpp"
#include "sim/trace.hpp"

namespace acc::sim {

using StreamId = std::int32_t;

class AcceleratorTile final : public Component {
 public:
  AcceleratorTile(std::string name, DualRing& ring, std::int32_t node,
                  Cycle cycles_per_sample, std::int64_t ni_capacity = 2);

  /// Register stream `id`'s virtual accelerator (kernel type + power-on
  /// state). The entry-gateway's configuration memory holds one context per
  /// multiplexed stream.
  void register_context(StreamId id, std::unique_ptr<accel::StreamKernel> k);

  /// Drop stream `id`'s virtual accelerator (control-plane departure).
  /// Requires a drained tile — the mode-change protocol quiesces the chain
  /// before reclaiming configuration memory. If the departing context was
  /// active, deterministically falls back to the lowest remaining id (or
  /// none): the next admission's swap_context reloads whatever it needs.
  void unregister_context(StreamId id);

  /// Gateway-side context switch at cycle `now`: requires the pipeline to
  /// be drained. Instantaneous here — the R_s switching time is charged by
  /// the gateway, which stalls the whole chain while the configuration bus
  /// runs (the caller's clock also timestamps the trace event, so a tile
  /// frozen by the wake-list stepper needs no resynchronization to switch).
  void swap_context(StreamId id, Cycle now);

  /// Expected upstream producer (for credit returns).
  void set_upstream(std::int32_t node, std::uint32_t tag);
  /// Downstream consumer NI: node, message tag and its buffer depth
  /// (initial credits).
  void set_downstream(std::int32_t node, std::uint32_t tag,
                      std::int64_t credits);

  void tick(Cycle now) override;
  /// Event horizon: core completion, a startable sample, or pending
  /// forwards/credit returns that must retry against ring backpressure.
  [[nodiscard]] Cycle next_event(Cycle now) const override;
  /// Replays the per-cycle busy accounting over a skipped quiescent range.
  void skip_to(Cycle from, Cycle to) override;
  /// Data and credits for this tile arrive at its ring node; the wake-list
  /// scheduler routes deliveries there back to us.
  [[nodiscard]] std::int32_t ring_node() const override { return node_; }
  /// Canonical state snapshot (see sim/state_hash.hpp). Frozen channel: the
  /// NI/core/credit state plus every registered kernel context's
  /// save_state() words — kernel-internal state (delay lines, decimation
  /// counters) determines future outputs, so equal digests must imply equal
  /// kernel futures too. processed_ is a lifetime counter (excluded);
  /// busy_cycles_ is skip-replayed accounting.
  void snapshot_state(StateHasher& h) const override;

  void set_trace(TraceLog* trace) { trace_ = trace; }
  /// Opt-in metrics: tile.<name>.{samples,busy_cycles,ctx_switches}.
  /// busy_cycles accrues cycles_per_sample at each completion EVENT (not
  /// per tick), so the total equals the dense busy accounting for every
  /// finished sample and is bit-identical across steppers.
  void set_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] std::int32_t node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool drained() const {
    return input_.empty() && pending_out_.empty() && !core_busy_;
  }
  [[nodiscard]] std::int64_t samples_processed() const { return processed_; }
  [[nodiscard]] std::int64_t busy_cycles() const { return busy_cycles_; }
  /// Credit-conservation oracles (V02): credits held toward the downstream
  /// NI, tokens buffered in our own NI input queue, and credit returns
  /// accepted but not yet injected. The in-core sample is not part of
  /// input_fill() — popping it already moved its slot's credit into
  /// pending_returns().
  [[nodiscard]] std::int64_t credits() const { return credits_; }
  [[nodiscard]] std::int64_t input_fill() const {
    return static_cast<std::int64_t>(input_.size());
  }
  [[nodiscard]] std::int64_t pending_returns() const {
    return pending_credit_returns_;
  }
  /// Words a context switch moves for this tile's active kernel (config-bus
  /// cost model input).
  [[nodiscard]] std::size_t context_words() const;

 private:
  void drain_network(Cycle now);

  std::string name_;
  DualRing& ring_;
  std::int32_t node_;
  Cycle cycles_per_sample_;
  std::int64_t ni_capacity_;

  std::int32_t upstream_node_ = -1;
  std::uint32_t upstream_tag_ = 0;
  std::int32_t downstream_node_ = -1;
  std::uint32_t downstream_tag_ = 0;
  std::int64_t credits_ = 0;

  std::map<StreamId, std::unique_ptr<accel::StreamKernel>> contexts_;
  StreamId active_ = -1;
  accel::StreamKernel* active_kernel_ = nullptr;  // contexts_[active_]

  std::deque<Flit> input_;
  std::vector<RingMsg> rx_;  // reusable drain buffer (hot path, no allocs)
  std::deque<Flit> pending_out_;
  std::vector<CQ16> scratch_out_;
  bool core_busy_ = false;
  Cycle core_done_at_ = 0;
  std::int64_t pending_credit_returns_ = 0;

  // Kernel precompute cache (ISSUE 8): when a sample start finds several
  // inputs queued, the whole queue runs through process_block at once and
  // each later start consumes its input's cached outputs. The trigger
  // depends only on the tile's own state at a start event — start events
  // happen at identical cycles with identical queue contents under every
  // stepper — so the cache (and its metrics) is stepper-exact. The kernel's
  // mutable state advances at precompute time, which is unobservable: the
  // only external reader is swap_context, which requires a drained tile,
  // and a drained tile has an empty cache (asserted there).
  std::deque<std::uint8_t> pre_counts_;  // outputs per still-queued input
  std::deque<CQ16> pre_samples_;         // the cached outputs, in order
  std::vector<CQ16> block_in_;           // process_block scratch
  std::vector<CQ16> block_out_;
  std::vector<std::uint8_t> block_counts_;

  std::int64_t processed_ = 0;
  std::int64_t busy_cycles_ = 0;
  TraceLog* trace_ = nullptr;
  obs::Counter m_samples_;
  obs::Counter m_busy_;
  obs::Counter m_ctx_switches_;
  obs::Counter m_batch_blocks_;
  obs::Counter m_batch_samples_;
};

}  // namespace acc::sim
