// Low-cost guaranteed-throughput dual-ring interconnect (refs [11]/[14] of
// the paper).
//
// Two unidirectional slotted rings: the DATA ring carries posted writes
// (flits) between tiles, the CREDIT ring carries flow-control credits in
// the OPPOSITE direction. Each hop takes one cycle. A node injects into the
// empty slot passing by (guaranteed-throughput: every node sees a free slot
// within one revolution under the paper's acceptance rule) and ejection
// always succeeds (lossless network: every tile guarantees acceptance,
// which is what removes the need for end-to-end flow control on writes).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "sim/flit.hpp"

namespace acc::sim {

using Cycle = std::int64_t;

/// Event-horizon sentinel: "no state change will ever happen here unless
/// some other component acts first" (see System::run).
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

class FaultInjector;
enum class FaultSite : int;
class WakeHub;

struct RingMsg {
  std::int32_t dst = -1;
  std::uint32_t tag = 0;  // channel / stream discriminator, component-defined
  Flit payload = 0;
};

/// One slotted unidirectional ring.
class Ring {
 public:
  Ring(std::int32_t nodes, bool clockwise);

  /// Queue a message for injection at `node` (bounded injection FIFO; the
  /// tile must retry next cycle when full — a posted write "completes when
  /// the interconnect accepts").
  [[nodiscard]] bool try_inject(std::int32_t node, const RingMsg& msg);

  /// Messages ejected at `node` since last drained, appended to `out`
  /// (cleared first). The caller owns `out` and reuses it across ticks, so
  /// the hot path performs no per-call allocation once the buffer warmed up.
  void drain_into(std::int32_t node, std::vector<RingMsg>& out);

  /// Eject-and-count for callers that only tally messages (credit returns):
  /// returns the number of messages ejected at `node` and discards them.
  [[nodiscard]] std::int64_t drain_count(std::int32_t node);

  /// Allocating convenience wrapper over drain_into (tests / cold paths).
  [[nodiscard]] std::vector<RingMsg> drain(std::int32_t node);

  /// Advance every slot one hop; eject and inject at each node. While a
  /// fault-injected stall window is open the ring freezes: no rotation, no
  /// ejection, no drain of the injection queues (messages are delayed,
  /// never lost — the paper's interconnect stays lossless under faults).
  void tick();

  /// Opt-in metrics: registers <prefix>.{injected,delivered,hops} (see
  /// docs/observability.md). Injections and deliveries are events; `hops`
  /// accrues one count per occupied slot per rotation — a rotation only
  /// happens on a densely ticked, non-stalled cycle, and the steppers skip
  /// exactly the cycles where no rotation moves anything, so all three
  /// totals are stepper-exact.
  void set_metrics(obs::MetricsRegistry* registry, const std::string& prefix);

  /// Opt-in fault injection: consult `injector` at `site` once per tick
  /// for a stall window (see sim/fault.hpp).
  void set_fault(FaultInjector* injector, FaultSite site);
  [[nodiscard]] FaultInjector* fault() const { return fault_; }

  /// Wake-list plumbing (see sim/wake.hpp): report injections and
  /// ejections so the scheduler can wake the ring and the draining tiles.
  /// Null (the default) under the dense / global-horizon steppers.
  void set_wake_hub(WakeHub* hub) { hub_ = hub; }

  /// True when no slot is occupied, no injection queue holds a message and
  /// no ejected message awaits pickup — ticking an idle ring is a no-op.
  [[nodiscard]] bool idle() const {
    return occupied_ == 0 && queued_ == 0 && pending_eject_ == 0;
  }

  /// Event horizon (see System::run): the earliest internal cycle at which
  /// a tick can change ring state or consult the fault injector's RNG,
  /// assuming no component injects in the meantime. Returns the current
  /// internal cycle while the ring is busy (tick every cycle) and
  /// kNeverCycle when nothing will ever happen again.
  [[nodiscard]] Cycle next_event() const;

  /// Jump the internal clock to `target` without ticking, accounting the
  /// skipped cycles exactly as dense ticking would (stall-window cycles).
  /// Only valid while the skipped range is quiescent per next_event().
  void skip_to(Cycle target);

  [[nodiscard]] std::int32_t nodes() const {
    return static_cast<std::int32_t>(slots_.size());
  }
  /// Internal tick counter (the wake-list scheduler syncs a frozen ring
  /// with skip_to before ticking it).
  [[nodiscard]] Cycle cycle() const { return now_; }
  /// Total messages delivered (stats).
  [[nodiscard]] std::int64_t delivered() const { return delivered_; }
  /// Cycles lost to fault-injected stall windows.
  [[nodiscard]] Cycle stall_cycles() const { return stall_cycles_; }

 private:
  struct Slot {
    bool occupied = false;
    RingMsg msg;
  };

  static constexpr std::size_t kInjectQueueDepth = 8;

  /// Physical slot currently sitting at `node` (rotation is an index
  /// offset, not a copy of the slot array). offset_ < n and node < n, so a
  /// conditional subtract replaces the modulo — tick() sits on the hot path
  /// of every stepper and a div on a runtime divisor costs more than the
  /// rest of the per-node work combined.
  [[nodiscard]] std::size_t slot_at(std::int32_t node) const {
    const std::size_t i = static_cast<std::size_t>(node) + offset_;
    return i >= slots_.size() ? i - slots_.size() : i;
  }

  std::vector<Slot> slots_;
  std::vector<std::deque<RingMsg>> inject_;
  std::vector<std::vector<RingMsg>> ejected_;
  std::size_t offset_ = 0;  // slots_[ (node + offset_) % n ] is at node
  bool clockwise_;
  std::int64_t delivered_ = 0;
  std::int64_t occupied_ = 0;       // slots in flight
  std::int64_t queued_ = 0;         // messages waiting in injection queues
  std::int64_t pending_eject_ = 0;  // ejected messages awaiting drain
  Cycle now_ = 0;  // internal tick counter (fault windows are cycle-based)
  FaultInjector* fault_ = nullptr;
  FaultSite fault_site_{};
  Cycle stall_until_ = 0;
  Cycle stall_cycles_ = 0;
  WakeHub* hub_ = nullptr;
  obs::Counter m_injected_;
  obs::Counter m_delivered_;
  obs::Counter m_hops_;
};

/// The paper's dual ring: data one way, credits the other way.
class DualRing {
 public:
  explicit DualRing(std::int32_t nodes)
      : data_(nodes, /*clockwise=*/true), credit_(nodes, /*clockwise=*/false) {}

  Ring& data() { return data_; }
  Ring& credit() { return credit_; }

  /// Wire both rings to one injector's kRingLink site (a stall models
  /// link-level contention hitting the physical ring pair).
  void set_fault(FaultInjector* injector);

  /// Register ring.data.* / ring.credit.* metrics on both rings.
  void set_metrics(obs::MetricsRegistry* registry) {
    data_.set_metrics(registry, "ring.data");
    credit_.set_metrics(registry, "ring.credit");
  }

  void tick() {
    data_.tick();
    credit_.tick();
  }

  [[nodiscard]] Cycle next_event() const {
    return std::min(data_.next_event(), credit_.next_event());
  }

  void skip_to(Cycle target) {
    data_.skip_to(target);
    credit_.skip_to(target);
  }

  void set_wake_hub(WakeHub* hub) {
    data_.set_wake_hub(hub);
    credit_.set_wake_hub(hub);
  }

 private:
  Ring data_;
  Ring credit_;
};

}  // namespace acc::sim
