// Low-cost guaranteed-throughput dual-ring interconnect (refs [11]/[14] of
// the paper).
//
// Two unidirectional slotted rings: the DATA ring carries posted writes
// (flits) between tiles, the CREDIT ring carries flow-control credits in
// the OPPOSITE direction. Each hop takes one cycle. A node injects into the
// empty slot passing by (guaranteed-throughput: every node sees a free slot
// within one revolution under the paper's acceptance rule) and ejection
// always succeeds (lossless network: every tile guarantees acceptance,
// which is what removes the need for end-to-end flow control on writes).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "sim/flit.hpp"
#include "sim/state_hash.hpp"
#include "sim/wake.hpp"

namespace acc::sim {

using Cycle = std::int64_t;

/// Event-horizon sentinel: "no state change will ever happen here unless
/// some other component acts first" (see System::run).
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

class FaultInjector;

struct RingMsg {
  std::int32_t dst = -1;
  std::uint32_t tag = 0;  // channel / stream discriminator, component-defined
  Flit payload = 0;
};

/// One slotted unidirectional ring.
class Ring {
 public:
  Ring(std::int32_t nodes, bool clockwise);

  /// Queue a message for injection at `node` (bounded injection FIFO; the
  /// tile must retry next cycle when full — a posted write "completes when
  /// the interconnect accepts"). Inline: tiles call this in retry loops on
  /// every tick of a streaming phase.
  [[nodiscard]] bool try_inject(std::int32_t node, const RingMsg& msg) {
    ACC_EXPECTS(node >= 0 && node < nodes());
    ACC_EXPECTS(msg.dst >= 0 && msg.dst < nodes());
    auto& q = inject_[static_cast<std::size_t>(node)];
    if (q.size() >= kInjectQueueDepth) return false;
    q.push_back(msg);
    ++queued_;
    m_injected_.add();
    // The hub only needs to hear transitions that can LOWER the ring's
    // horizon. With messages already queued before this push, next_event
    // was (and stays) pinned at the next non-stalled tick, so the cached
    // schedule is already as early as it can get and the notification
    // would be a no-op. queued_ == 1 means this push made the queues
    // non-empty — the only injection that can un-park the ring.
    if (hub_ != nullptr && queued_ == 1) hub_->ring_activity(*this);
    return true;
  }

  /// Messages ejected at `node` since last drained, appended to `out`
  /// (cleared first). The caller owns `out` and reuses it across ticks, so
  /// the hot path performs no per-call allocation once the buffer warmed up.
  void drain_into(std::int32_t node, std::vector<RingMsg>& out) {
    ACC_EXPECTS(node >= 0 && node < nodes());
    out.clear();
    auto& src = ejected_[static_cast<std::size_t>(node)];
    if (src.empty()) return;
    out.insert(out.end(), src.begin(), src.end());
    pending_eject_ -= static_cast<std::int64_t>(src.size());
    src.clear();
  }

  /// Eject-and-count for callers that only tally messages (credit returns):
  /// returns the number of messages ejected at `node` and discards them.
  [[nodiscard]] std::int64_t drain_count(std::int32_t node) {
    ACC_EXPECTS(node >= 0 && node < nodes());
    auto& src = ejected_[static_cast<std::size_t>(node)];
    const auto n = static_cast<std::int64_t>(src.size());
    pending_eject_ -= n;
    src.clear();
    return n;
  }

  /// Allocating convenience wrapper over drain_into (tests / cold paths).
  [[nodiscard]] std::vector<RingMsg> drain(std::int32_t node);

  /// Advance every slot one hop; eject and inject at each node. While a
  /// fault-injected stall window is open the ring freezes: no rotation, no
  /// ejection, no drain of the injection queues (messages are delayed,
  /// never lost — the paper's interconnect stays lossless under faults).
  void tick();

  /// Opt-in metrics: registers <prefix>.{injected,delivered,hops} (see
  /// docs/observability.md). Injections and deliveries are events; `hops`
  /// accrues one count per occupied slot per rotation — a rotation only
  /// happens on a densely ticked, non-stalled cycle, and the steppers skip
  /// exactly the cycles where no rotation moves anything, so all three
  /// totals are stepper-exact.
  void set_metrics(obs::MetricsRegistry* registry, const std::string& prefix);

  /// Opt-in fault injection: consult `injector` at `site` once per tick
  /// for a stall window (see sim/fault.hpp).
  void set_fault(FaultInjector* injector, FaultSite site);
  [[nodiscard]] FaultInjector* fault() const { return fault_; }

  /// Wake-list plumbing (see sim/wake.hpp): report injections and
  /// ejections so the scheduler can wake the ring and the draining tiles.
  /// Null (the default) under the dense / global-horizon steppers.
  void set_wake_hub(WakeHub* hub) { hub_ = hub; }

  /// Back the injection queues with a per-System arena (see common/
  /// arena.hpp). Standalone rings (unit tests) stay heap-backed.
  void set_arena(Arena* arena) {
    for (auto& q : inject_) q.set_arena(arena);
  }

  /// True when no slot is occupied and no injection queue holds a message —
  /// ticking such a ring moves nothing. Ejected messages awaiting pickup
  /// do NOT make the ring busy: the draining tile's next_event (fed by
  /// has_ejected) schedules the pickup, not the ring's.
  [[nodiscard]] bool idle() const { return occupied_ == 0 && queued_ == 0; }

  /// True when ejected messages await `node`'s drain. Components that
  /// drain this node must report now + 1 from their next_event while this
  /// holds — that is what lets the ring itself fast-forward across
  /// in-flight hop cycles without stranding a delivered message.
  [[nodiscard]] bool has_ejected(std::int32_t node) const {
    return !ejected_[static_cast<std::size_t>(node)].empty();
  }

  /// Event horizon (see System::run): the earliest internal cycle at which
  /// a tick can change ring state or consult the fault injector's RNG,
  /// assuming no component injects in the meantime. With messages queued
  /// for pickup (or a fault injector consuming RNG per tick) that is the
  /// next non-stalled cycle; with traffic purely IN FLIGHT it is the cycle
  /// whose rotation lands the nearest message on its destination — the
  /// intermediate hop cycles only accrue the hops metric, which skip_to
  /// replays exactly. kNeverCycle when nothing will ever happen again.
  /// Inline: the steppers consult it after every ring tick.
  [[nodiscard]] Cycle next_event() const {
    if (queued_ > 0 || (fault_ != nullptr && occupied_ > 0)) {
      // Pickups happen on the very next non-stalled tick, and a fault
      // injector consults its RNG on every non-stalled tick while traffic
      // is in flight (each consult advances the deterministic stream): tick
      // every cycle, or — while frozen by a stall window — resume when the
      // window releases (frozen cycles only accrue stall accounting,
      // replayed by skip_to).
      return now_ > stall_until_ ? now_ : stall_until_;
    }
    if (occupied_ > 0) {
      // Fault-free traffic purely in flight: every tick rotates (no stall
      // window can open without an injector), and nothing externally
      // visible happens until the rotation that lands the nearest message
      // on its destination — its ejection tick. Hops in between are
      // replayed by skip_to. The scan is O(nodes); rings are 4-16 nodes
      // wide.
      const auto n = static_cast<Cycle>(slots_.size());
      Cycle k_min = kNeverCycle;
      for (std::int32_t node = 0; node < nodes(); ++node) {
        const Slot& s = slots_[slot_at(node)];
        if (!s.occupied) continue;
        // dst and node both lie in [0, n), so the hop distance wraps with
        // one conditional add — no runtime-divisor modulo on this path.
        Cycle k = clockwise_ ? s.msg.dst - node : node - s.msg.dst;
        if (k <= 0) k += n;  // wrapped, or self-addressed: full revolution
        if (k < k_min) k_min = k;
      }
      return now_ + k_min - 1;
    }
    // Empty ring: a tick only matters when it would consult the fault
    // injector's RNG (an eligible consult advances the deterministic
    // stream, which is externally visible state). Skipped stall-window
    // accounting is replayed exactly by skip_to.
    if (fault_ == nullptr) return kNeverCycle;
    return fault_next_eligible();
  }

  /// Jump the internal clock to `target` without ticking, accounting the
  /// skipped cycles exactly as dense ticking would: stall-window cycles,
  /// and — for in-flight traffic — slot rotations and per-hop metric
  /// accrual. Only valid while the skipped range is quiescent per
  /// next_event() (no ejection or pickup can fall inside it).
  /// Inline: the wake-list stepper syncs both rings on every jump.
  void skip_to(Cycle target) {
    if (target <= now_) return;
    // Dense ticks inside an open stall window each count one stall cycle;
    // replay that accounting for the portion of the window we jump over.
    if (stall_until_ > now_) {
      const Cycle stalled_until = target < stall_until_ ? target : stall_until_;
      stall_cycles_ += stalled_until - now_;
    }
    if (occupied_ > 0) skip_rotations(target);
    now_ = target;
  }

  /// Messages currently inside the network addressed to `dst`: in-flight
  /// slots, injection-queue entries, and ejected messages awaiting drain
  /// (ejection only ever happens at msg.dst). The model checker's credit-
  /// conservation rule (V02) counts these as tokens in flight on the link
  /// terminating at `dst`.
  [[nodiscard]] std::int64_t count_to(std::int32_t dst) const {
    ACC_EXPECTS(dst >= 0 && dst < nodes());
    std::int64_t n = 0;
    for (const Slot& s : slots_) {
      if (s.occupied && s.msg.dst == dst) ++n;
    }
    for (const auto& q : inject_) {
      for (std::size_t i = 0; i < q.size(); ++i) {
        if (q[i].dst == dst) ++n;
      }
    }
    for (const auto& e : ejected_) {
      for (const RingMsg& m : e) {
        if (m.dst == dst) ++n;
      }
    }
    return n;
  }

  /// Canonical state snapshot (see sim/state_hash.hpp). Slots are visited
  /// in NODE order through slot_at, so two rings differing only in their
  /// rotation offset — physically the same network state — hash equal.
  /// delivered_ is a lifetime counter (excluded); stall_cycles_ is
  /// skip-replayed accounting.
  void snapshot_state(StateHasher& h) const {
    for (std::int32_t node = 0; node < nodes(); ++node) {
      const Slot& s = slots_[slot_at(node)];
      h.mix(s.occupied);
      if (s.occupied) {
        h.mix(s.msg.dst);
        h.mix(s.msg.tag);
        h.mix(s.msg.payload);
      }
      const auto& q = inject_[static_cast<std::size_t>(node)];
      h.mix(static_cast<std::int64_t>(q.size()));
      for (std::size_t i = 0; i < q.size(); ++i) {
        h.mix(q[i].dst);
        h.mix(q[i].tag);
        h.mix(q[i].payload);
      }
      const auto& e = ejected_[static_cast<std::size_t>(node)];
      h.mix(static_cast<std::int64_t>(e.size()));
      for (const RingMsg& m : e) {
        h.mix(m.dst);
        h.mix(m.tag);
        h.mix(m.payload);
      }
    }
    h.mix_cycle(stall_until_);
    h.accounting(stall_cycles_);
  }

  [[nodiscard]] std::int32_t nodes() const {
    return static_cast<std::int32_t>(slots_.size());
  }
  /// Internal tick counter (the wake-list scheduler syncs a frozen ring
  /// with skip_to before ticking it).
  [[nodiscard]] Cycle cycle() const { return now_; }
  /// Total messages delivered (stats).
  [[nodiscard]] std::int64_t delivered() const { return delivered_; }
  /// Cycles lost to fault-injected stall windows.
  [[nodiscard]] Cycle stall_cycles() const { return stall_cycles_; }

 private:
  struct Slot {
    bool occupied = false;
    RingMsg msg;
  };

  static constexpr std::size_t kInjectQueueDepth = 8;

  /// Physical slot currently sitting at `node` (rotation is an index
  /// offset, not a copy of the slot array). offset_ < n and node < n, so a
  /// conditional subtract replaces the modulo — tick() sits on the hot path
  /// of every stepper and a div on a runtime divisor costs more than the
  /// rest of the per-node work combined.
  [[nodiscard]] std::size_t slot_at(std::int32_t node) const {
    const std::size_t i = static_cast<std::size_t>(node) + offset_;
    return i >= slots_.size() ? i - slots_.size() : i;
  }

  /// Out-of-line arm of next_event for the empty-ring-with-injector case
  /// (needs FaultInjector's definition, which this header cannot include).
  [[nodiscard]] Cycle fault_next_eligible() const;

  /// Out-of-line arm of skip_to: replay the rotations and per-hop metric
  /// accrual for in-flight traffic (the only case with a runtime modulo).
  void skip_rotations(Cycle target);

  std::vector<Slot> slots_;
  std::vector<RingBuffer<RingMsg>> inject_;
  std::vector<std::vector<RingMsg>> ejected_;
  std::size_t offset_ = 0;  // slots_[ (node + offset_) % n ] is at node
  bool clockwise_;
  std::int64_t delivered_ = 0;
  std::int64_t occupied_ = 0;       // slots in flight
  std::int64_t queued_ = 0;         // messages waiting in injection queues
  std::int64_t pending_eject_ = 0;  // ejected messages awaiting drain
  Cycle now_ = 0;  // internal tick counter (fault windows are cycle-based)
  FaultInjector* fault_ = nullptr;
  FaultSite fault_site_{};
  Cycle stall_until_ = 0;
  Cycle stall_cycles_ = 0;
  WakeHub* hub_ = nullptr;
  obs::Counter m_injected_;
  obs::Counter m_delivered_;
  obs::Counter m_hops_;
};

/// The paper's dual ring: data one way, credits the other way.
class DualRing {
 public:
  explicit DualRing(std::int32_t nodes)
      : data_(nodes, /*clockwise=*/true), credit_(nodes, /*clockwise=*/false) {}

  Ring& data() { return data_; }
  Ring& credit() { return credit_; }
  [[nodiscard]] const Ring& data() const { return data_; }
  [[nodiscard]] const Ring& credit() const { return credit_; }

  /// Wire both rings to one injector's kRingLink site (a stall models
  /// link-level contention hitting the physical ring pair).
  void set_fault(FaultInjector* injector);

  /// Register ring.data.* / ring.credit.* metrics on both rings.
  void set_metrics(obs::MetricsRegistry* registry) {
    data_.set_metrics(registry, "ring.data");
    credit_.set_metrics(registry, "ring.credit");
  }

  void tick() {
    data_.tick();
    credit_.tick();
  }

  [[nodiscard]] Cycle next_event() const {
    return std::min(data_.next_event(), credit_.next_event());
  }

  void skip_to(Cycle target) {
    data_.skip_to(target);
    credit_.skip_to(target);
  }

  void set_wake_hub(WakeHub* hub) {
    data_.set_wake_hub(hub);
    credit_.set_wake_hub(hub);
  }

  /// Arena-back both rings' injection queues (see Ring::set_arena).
  void set_arena(Arena* arena) {
    data_.set_arena(arena);
    credit_.set_arena(arena);
  }

 private:
  Ring data_;
  Ring credit_;
};

}  // namespace acc::sim
