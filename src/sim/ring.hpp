// Low-cost guaranteed-throughput dual-ring interconnect (refs [11]/[14] of
// the paper).
//
// Two unidirectional slotted rings: the DATA ring carries posted writes
// (flits) between tiles, the CREDIT ring carries flow-control credits in
// the OPPOSITE direction. Each hop takes one cycle. A node injects into the
// empty slot passing by (guaranteed-throughput: every node sees a free slot
// within one revolution under the paper's acceptance rule) and ejection
// always succeeds (lossless network: every tile guarantees acceptance,
// which is what removes the need for end-to-end flow control on writes).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "sim/flit.hpp"

namespace acc::sim {

using Cycle = std::int64_t;

struct RingMsg {
  std::int32_t dst = -1;
  std::uint32_t tag = 0;  // channel / stream discriminator, component-defined
  Flit payload = 0;
};

/// One slotted unidirectional ring.
class Ring {
 public:
  Ring(std::int32_t nodes, bool clockwise);

  /// Queue a message for injection at `node` (bounded injection FIFO; the
  /// tile must retry next cycle when full — a posted write "completes when
  /// the interconnect accepts").
  [[nodiscard]] bool try_inject(std::int32_t node, const RingMsg& msg);

  /// Messages ejected at `node` since last drained. Caller takes ownership.
  [[nodiscard]] std::vector<RingMsg> drain(std::int32_t node);

  /// Advance every slot one hop; eject and inject at each node.
  void tick();

  [[nodiscard]] std::int32_t nodes() const {
    return static_cast<std::int32_t>(slots_.size());
  }
  /// Total messages delivered (stats).
  [[nodiscard]] std::int64_t delivered() const { return delivered_; }

 private:
  struct Slot {
    bool occupied = false;
    RingMsg msg;
  };

  static constexpr std::size_t kInjectQueueDepth = 8;

  std::vector<Slot> slots_;  // slots_[i] currently at node i
  std::vector<std::deque<RingMsg>> inject_;
  std::vector<std::vector<RingMsg>> ejected_;
  bool clockwise_;
  std::int64_t delivered_ = 0;
};

/// The paper's dual ring: data one way, credits the other way.
class DualRing {
 public:
  explicit DualRing(std::int32_t nodes)
      : data_(nodes, /*clockwise=*/true), credit_(nodes, /*clockwise=*/false) {}

  Ring& data() { return data_; }
  Ring& credit() { return credit_; }

  void tick() {
    data_.tick();
    credit_.tick();
  }

 private:
  Ring data_;
  Ring credit_;
};

}  // namespace acc::sim
