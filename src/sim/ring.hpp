// Low-cost guaranteed-throughput dual-ring interconnect (refs [11]/[14] of
// the paper).
//
// Two unidirectional slotted rings: the DATA ring carries posted writes
// (flits) between tiles, the CREDIT ring carries flow-control credits in
// the OPPOSITE direction. Each hop takes one cycle. A node injects into the
// empty slot passing by (guaranteed-throughput: every node sees a free slot
// within one revolution under the paper's acceptance rule) and ejection
// always succeeds (lossless network: every tile guarantees acceptance,
// which is what removes the need for end-to-end flow control on writes).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "sim/flit.hpp"

namespace acc::sim {

using Cycle = std::int64_t;

class FaultInjector;
enum class FaultSite : int;

struct RingMsg {
  std::int32_t dst = -1;
  std::uint32_t tag = 0;  // channel / stream discriminator, component-defined
  Flit payload = 0;
};

/// One slotted unidirectional ring.
class Ring {
 public:
  Ring(std::int32_t nodes, bool clockwise);

  /// Queue a message for injection at `node` (bounded injection FIFO; the
  /// tile must retry next cycle when full — a posted write "completes when
  /// the interconnect accepts").
  [[nodiscard]] bool try_inject(std::int32_t node, const RingMsg& msg);

  /// Messages ejected at `node` since last drained. Caller takes ownership.
  [[nodiscard]] std::vector<RingMsg> drain(std::int32_t node);

  /// Advance every slot one hop; eject and inject at each node. While a
  /// fault-injected stall window is open the ring freezes: no rotation, no
  /// ejection, no drain of the injection queues (messages are delayed,
  /// never lost — the paper's interconnect stays lossless under faults).
  void tick();

  /// Opt-in fault injection: consult `injector` at `site` once per tick
  /// for a stall window (see sim/fault.hpp).
  void set_fault(FaultInjector* injector, FaultSite site);

  [[nodiscard]] std::int32_t nodes() const {
    return static_cast<std::int32_t>(slots_.size());
  }
  /// Total messages delivered (stats).
  [[nodiscard]] std::int64_t delivered() const { return delivered_; }
  /// Cycles lost to fault-injected stall windows.
  [[nodiscard]] Cycle stall_cycles() const { return stall_cycles_; }

 private:
  struct Slot {
    bool occupied = false;
    RingMsg msg;
  };

  static constexpr std::size_t kInjectQueueDepth = 8;

  std::vector<Slot> slots_;  // slots_[i] currently at node i
  std::vector<std::deque<RingMsg>> inject_;
  std::vector<std::vector<RingMsg>> ejected_;
  bool clockwise_;
  std::int64_t delivered_ = 0;
  Cycle now_ = 0;  // internal tick counter (fault windows are cycle-based)
  FaultInjector* fault_ = nullptr;
  FaultSite fault_site_{};
  Cycle stall_until_ = 0;
  Cycle stall_cycles_ = 0;
};

/// The paper's dual ring: data one way, credits the other way.
class DualRing {
 public:
  explicit DualRing(std::int32_t nodes)
      : data_(nodes, /*clockwise=*/true), credit_(nodes, /*clockwise=*/false) {}

  Ring& data() { return data_; }
  Ring& credit() { return credit_; }

  /// Wire both rings to one injector's kRingLink site (a stall models
  /// link-level contention hitting the physical ring pair).
  void set_fault(FaultInjector* injector);

  void tick() {
    data_.tick();
    credit_.tick();
  }

 private:
  Ring data_;
  Ring credit_;
};

}  // namespace acc::sim
