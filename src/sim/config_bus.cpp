#include "sim/config_bus.hpp"

namespace acc::sim {

Cycle context_switch_cost(const ConfigBusSpec& bus,
                          std::span<AcceleratorTile* const> chain) {
  Cycle total = bus.setup_cycles;
  for (const AcceleratorTile* a : chain) {
    ACC_EXPECTS(a != nullptr);
    total += 2 * static_cast<Cycle>(a->context_words()) * bus.cycles_per_word;
  }
  return total;
}

Cycle context_switch_cost(const ConfigBusSpec& bus,
                          std::span<const std::size_t> words) {
  Cycle total = bus.setup_cycles;
  for (std::size_t w : words)
    total += 2 * static_cast<Cycle>(w) * bus.cycles_per_word;
  return total;
}

}  // namespace acc::sim
