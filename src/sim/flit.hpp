// Flits: the unit of payload moved over the dual-ring interconnect.
//
// One complex Q2.16 sample packs into a single 64-bit flit (two 32-bit
// words), matching the paper's streaming network where accelerators consume
// and produce one data token per transfer.
#pragma once

#include <cstdint>

#include "common/fixed_point.hpp"

namespace acc::sim {

using Flit = std::uint64_t;

[[nodiscard]] constexpr Flit pack_sample(CQ16 s) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.re.raw()))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.im.raw()));
}

[[nodiscard]] constexpr CQ16 unpack_sample(Flit f) {
  return CQ16{
      Q16::from_raw(static_cast<std::int32_t>(static_cast<std::uint32_t>(f >> 32))),
      Q16::from_raw(static_cast<std::int32_t>(static_cast<std::uint32_t>(f)))};
}

}  // namespace acc::sim
