// Accelerator configuration bus cost model.
//
// The paper charges a flat R_s = 4100 cycles per context switch and notes
// that switching is done "by reading and restoring state from software" —
// and that faster techniques are future work. This model derives the switch
// cost from first principles instead: per managed accelerator, the bus must
// SAVE the outgoing context and RESTORE the incoming one, word by word,
// plus a fixed per-switch setup. It lets the analyses answer "what if the
// state were moved by a hardware DMA at 1 word/cycle?" (see
// bench_ablation_reconfig).
//
// The bus is a cost model, not a ticked component: a switch of cost R
// occupies the entry-gateway's kReconfig state for R cycles, so its
// contribution to the event-horizon stepper (System::run) is the gateway's
// busy_until_ deadline — the bus transfer itself can always be skipped
// over, it has no per-cycle observable state of its own.
#pragma once

#include <span>

#include "sim/accel_tile.hpp"

namespace acc::sim {

struct ConfigBusSpec {
  /// Fixed software/bus overhead per context switch (interrupt handling,
  /// descriptor setup).
  Cycle setup_cycles = 100;
  /// Bus cycles per 32-bit state word moved.
  Cycle cycles_per_word = 2;
};

/// Cost of one full context switch over `chain`: for every accelerator,
/// save the active context and restore the next one (2 transfers of its
/// state footprint).
[[nodiscard]] Cycle context_switch_cost(
    const ConfigBusSpec& bus, std::span<AcceleratorTile* const> chain);

/// Same, from explicit per-accelerator state word counts (analysis-time use
/// when no simulator tiles exist yet).
[[nodiscard]] Cycle context_switch_cost(const ConfigBusSpec& bus,
                                        std::span<const std::size_t> words);

}  // namespace acc::sim
