// High-level assembly of one gateway-managed accelerator chain: entry
// gateway, N accelerator tiles, exit gateway, fully wired for data and
// credits on the dual ring. Collapses the node/tag bookkeeping that every
// system (the PAL app, the examples) otherwise repeats.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/kernel.hpp"
#include "sim/gateway.hpp"
#include "sim/system.hpp"

namespace acc::sim {

struct ChainConfig {
  std::string name = "chain";
  /// First ring node of this chain; it occupies nodes
  /// [base_node, base_node + accel_cycles.size() + 1].
  std::int32_t base_node = 0;
  /// Per-accelerator processing cost, in chain order.
  std::vector<Cycle> accel_cycles{1};
  Cycle epsilon = 15;
  Cycle delta = 1;
  std::int64_t ni_capacity = 2;
  Cycle exit_notify_lag = 4;
  /// Optional event tracing for every component of the chain.
  TraceLog* trace = nullptr;
  /// Optional metrics: registers the gateways, every accelerator tile, the
  /// System's dual ring and (when fault is set) the injector. C-FIFOs are
  /// caller-owned — wire them per FIFO via CFifo::set_metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional fault injection: wires the gateways (config-bus contention,
  /// notification delay/drop) and the System's dual ring (stall windows).
  /// Attach C-FIFO credit-withhold faults per FIFO via CFifo::set_fault.
  FaultInjector* fault = nullptr;
  /// Entry-gateway recovery policy (notify_timeout = 0 disables).
  GatewayRetryPolicy retry{};
};

/// Handles into an assembled chain.
struct GatewayChain {
  EntryGateway* entry = nullptr;
  ExitGateway* exit = nullptr;
  std::vector<AcceleratorTile*> accels;

  /// Register a stream: its route plus one kernel per accelerator tile (in
  /// chain order) holding the stream's per-context state.
  void add_stream(const StreamRoute& route,
                  std::vector<std::unique_ptr<accel::StreamKernel>> kernels);

  /// Ring nodes consumed, for laying out further chains.
  [[nodiscard]] std::int32_t nodes_used() const {
    return static_cast<std::int32_t>(accels.size()) + 2;
  }
};

/// Build the chain into `sys`. The System's ring must have at least
/// base_node + accel_cycles.size() + 2 nodes.
[[nodiscard]] GatewayChain build_gateway_chain(System& sys,
                                               const ChainConfig& cfg);

}  // namespace acc::sim
