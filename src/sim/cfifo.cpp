#include "sim/cfifo.hpp"

#include <algorithm>

#include "sim/component.hpp"
#include "sim/fault.hpp"

namespace acc::sim {

CFifo::CFifo(std::string name, std::int64_t capacity,
             Cycle read_visibility_lag, Cycle write_visibility_lag)
    : name_(std::move(name)),
      capacity_(capacity),
      rlag_(read_visibility_lag),
      wlag_(write_visibility_lag) {
  ACC_EXPECTS(capacity >= 1);
  ACC_EXPECTS(read_visibility_lag >= 0 && write_visibility_lag >= 0);
}

std::int64_t CFifo::visible_data_prefix(Cycle now) const {
  std::size_t lo = 0;
  std::size_t hi = data_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (data_[mid].visible_at <= now) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<std::int64_t>(lo);
}

std::int64_t CFifo::space_visible(Cycle now) const {
  last_now_ = std::max(last_now_, now);
  // Writer sees: capacity - (its own pushes) + (reads whose counter update
  // has arrived back). freed_ deadlines are monotone, so the visible prefix
  // ends at a binary-searchable boundary (this is a per-tick hot path).
  std::size_t lo = 0;
  std::size_t hi = freed_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (freed_[mid] <= now) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const auto freed_visible = static_cast<std::int64_t>(lo);
  const std::int64_t outstanding =
      static_cast<std::int64_t>(data_.size()) +
      (static_cast<std::int64_t>(freed_.size()) - freed_visible);
  return capacity_ - outstanding;
}

bool CFifo::can_push(Cycle now) const {
  // Equivalent to space_visible(now) > 0 without counting the whole visible
  // prefix: space exists iff at least data + freed - capacity + 1 of the
  // pending credit returns are visible, and deadlines are monotone, so one
  // indexed compare answers it (push/pop guards sit on every tick).
  last_now_ = std::max(last_now_, now);
  const std::int64_t tight = static_cast<std::int64_t>(data_.size()) +
                             static_cast<std::int64_t>(freed_.size()) -
                             capacity_;
  if (tight < 0) return true;
  if (tight >= static_cast<std::int64_t>(freed_.size())) return false;
  return freed_[static_cast<std::size_t>(tight)] <= now;
}

void CFifo::push(Cycle now, Flit f) {
  ACC_EXPECTS_MSG(can_push(now), "CFifo '" + name_ + "' push without space");
  // Retire freed-space entries the writer has already observed; they are
  // folded into the capacity from now on.
  while (!freed_.empty() && freed_.front() <= now) freed_.pop_front();
  Cycle visible_at = now + rlag_;
  if (fault_ != nullptr)
    visible_at += fault_->delay(FaultSite::kCreditWithhold, now);
  // The write counter is a single index: withholding one update withholds
  // everything behind it, so visibility times stay monotone.
  if (!data_.empty()) visible_at = std::max(visible_at, data_.back().visible_at);
  data_.push_back(Entry{visible_at, f});
  ++pushed_;
  peak_ = std::max(peak_, static_cast<std::int64_t>(data_.size()));
  m_pushed_.add();
  m_occupancy_.set(static_cast<std::int64_t>(data_.size()));
  m_occupancy_hist_.observe(static_cast<std::int64_t>(data_.size()));
  for (Component* w : push_watchers_) w->request_wake();
}

std::int64_t CFifo::fill_visible(Cycle now) const {
  // Arrival times are monotone; the visible prefix usually spans most of a
  // deep FIFO, so counting it linearly made this the simulator's hottest
  // function. Binary-search the boundary instead.
  return visible_data_prefix(now);
}

Cycle CFifo::when_fill_visible(std::int64_t n, Cycle now) const {
  if (n <= 0) return now;
  if (static_cast<std::int64_t>(data_.size()) < n) return kNeverCycle;
  // Visibility deadlines are monotone: the n-th sample is visible exactly
  // when its own deadline passes.
  return std::max(now, data_[static_cast<std::size_t>(n - 1)].visible_at);
}

Cycle CFifo::when_space_visible(std::int64_t n, Cycle now) const {
  const std::int64_t limit =
      capacity_ - static_cast<std::int64_t>(data_.size());
  if (limit < n) return kNeverCycle;  // a pop must land first
  const std::int64_t allowed = limit - n;  // in-flight credits we tolerate
  const std::int64_t pending = static_cast<std::int64_t>(freed_.size());
  if (pending <= allowed) return now;
  // freed_ deadlines are monotone: space reaches n once all but `allowed`
  // of the pending credit returns have become visible to the writer.
  return std::max(now, freed_[static_cast<std::size_t>(pending - allowed - 1)]);
}

Flit CFifo::front(Cycle now) const {
  ACC_EXPECTS_MSG(can_pop(now), "CFifo '" + name_ + "' front on empty view");
  return data_.front().flit;
}

Flit CFifo::pop(Cycle now) {
  ACC_EXPECTS_MSG(can_pop(now), "CFifo '" + name_ + "' pop on empty view");
  const Flit f = data_.front().flit;
  data_.pop_front();
  Cycle freed_at = now + wlag_;
  if (fault_ != nullptr)
    freed_at += fault_->delay(FaultSite::kCreditWithhold, now);
  if (!freed_.empty()) freed_at = std::max(freed_at, freed_.back());
  freed_.push_back(freed_at);
  ++popped_;
  m_popped_.add();
  m_occupancy_.set(static_cast<std::int64_t>(data_.size()));
  for (Component* w : pop_watchers_) w->request_wake();
  return f;
}

std::size_t CFifo::push_run(Cycle base, Cycle stride,
                            std::span<const Flit> flits,
                            const Component* self) {
  std::size_t n = 0;
  for (const Flit f : flits) {
    const Cycle vt = base + stride * static_cast<Cycle>(n);
    // First token: the caller vouches for its legality (usually it is the
    // mid-tick operation at the real current cycle). Later tokens: re-read
    // the grant — a watcher woken by a previous push in this very run may
    // have collapsed it — and require a read lag (see read_lag()).
    if (n > 0 && (rlag_ < 1 || self == nullptr ||
                  vt >= self->batch_quiet_until()))
      break;
    if (!can_push(vt)) break;
    push(vt, f);
    ++n;
  }
  note_run(n);
  return n;
}

std::size_t CFifo::pop_run(Cycle base, Cycle stride, std::size_t max_tokens,
                           std::vector<Flit>* out, std::vector<Cycle>* stamps,
                           const Component* self) {
  std::size_t n = 0;
  while (n < max_tokens) {
    const Cycle vt = base + stride * static_cast<Cycle>(n);
    if (n > 0 && (wlag_ < 1 || self == nullptr ||
                  vt >= self->batch_quiet_until()))
      break;
    if (!can_pop(vt)) break;
    const Flit f = pop(vt);
    if (out != nullptr) out->push_back(f);
    if (stamps != nullptr) stamps->push_back(vt);
    ++n;
  }
  note_run(n);
  return n;
}

void CFifo::set_capacity(std::int64_t capacity) {
  ACC_EXPECTS(capacity >= 1);
  ACC_EXPECTS_MSG(capacity >= static_cast<std::int64_t>(data_.size()) +
                                  static_cast<std::int64_t>(freed_.size()),
                  "CFifo '" + name_ +
                      "' cannot shrink below outstanding tokens");
  if (capacity == capacity_) return;
  capacity_ = capacity;
  // A writer parked on when_space_visible may become unblocked right now.
  for (Component* w : pop_watchers_) w->request_wake();
}

void CFifo::set_metrics(obs::MetricsRegistry* registry) {
  const std::string prefix = "cfifo." + name_;
  m_pushed_ = obs::make_counter(registry, prefix + ".pushed");
  m_popped_ = obs::make_counter(registry, prefix + ".popped");
  m_occupancy_ = obs::make_gauge(registry, prefix + ".occupancy");
  m_occupancy_hist_ = obs::make_histogram(registry, prefix + ".occupancy_hist",
                                          obs::occupancy_bounds(capacity_));
}

void CFifo::add_push_watcher(Component* c) {
  ACC_EXPECTS(c != nullptr);
  if (std::find(push_watchers_.begin(), push_watchers_.end(), c) ==
      push_watchers_.end())
    push_watchers_.push_back(c);
}

void CFifo::add_pop_watcher(Component* c) {
  ACC_EXPECTS(c != nullptr);
  if (std::find(pop_watchers_.begin(), pop_watchers_.end(), c) ==
      pop_watchers_.end())
    pop_watchers_.push_back(c);
}

}  // namespace acc::sim
