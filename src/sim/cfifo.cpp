#include "sim/cfifo.hpp"

#include <algorithm>

#include "sim/fault.hpp"

namespace acc::sim {

CFifo::CFifo(std::string name, std::int64_t capacity,
             Cycle read_visibility_lag, Cycle write_visibility_lag)
    : name_(std::move(name)),
      capacity_(capacity),
      rlag_(read_visibility_lag),
      wlag_(write_visibility_lag) {
  ACC_EXPECTS(capacity >= 1);
  ACC_EXPECTS(read_visibility_lag >= 0 && write_visibility_lag >= 0);
}

std::int64_t CFifo::space_visible(Cycle now) const {
  last_now_ = std::max(last_now_, now);
  // Writer sees: capacity - (its own pushes) + (reads whose counter update
  // has arrived back).
  std::int64_t freed_visible = 0;
  for (Cycle t : freed_) {
    if (t <= now) ++freed_visible;
  }
  const std::int64_t outstanding =
      static_cast<std::int64_t>(data_.size()) +
      (static_cast<std::int64_t>(freed_.size()) - freed_visible);
  return capacity_ - outstanding;
}

bool CFifo::can_push(Cycle now) const { return space_visible(now) > 0; }

void CFifo::push(Cycle now, Flit f) {
  ACC_EXPECTS_MSG(can_push(now), "CFifo '" + name_ + "' push without space");
  // Retire freed-space entries the writer has already observed; they are
  // folded into the capacity from now on.
  while (!freed_.empty() && freed_.front() <= now) freed_.pop_front();
  Cycle visible_at = now + rlag_;
  if (fault_ != nullptr)
    visible_at += fault_->delay(FaultSite::kCreditWithhold, now);
  // The write counter is a single index: withholding one update withholds
  // everything behind it, so visibility times stay monotone.
  if (!data_.empty()) visible_at = std::max(visible_at, data_.back().first);
  data_.emplace_back(visible_at, f);
  ++pushed_;
  peak_ = std::max(peak_, static_cast<std::int64_t>(data_.size()));
}

std::int64_t CFifo::fill_visible(Cycle now) const {
  std::int64_t n = 0;
  for (const auto& [t, f] : data_) {
    if (t <= now) ++n;
    else break;  // arrival times are monotone
  }
  return n;
}

Flit CFifo::front(Cycle now) const {
  ACC_EXPECTS_MSG(can_pop(now), "CFifo '" + name_ + "' front on empty view");
  return data_.front().second;
}

Flit CFifo::pop(Cycle now) {
  ACC_EXPECTS_MSG(can_pop(now), "CFifo '" + name_ + "' pop on empty view");
  const Flit f = data_.front().second;
  data_.pop_front();
  Cycle freed_at = now + wlag_;
  if (fault_ != nullptr)
    freed_at += fault_->delay(FaultSite::kCreditWithhold, now);
  if (!freed_.empty()) freed_at = std::max(freed_at, freed_.back());
  freed_.push_back(freed_at);
  ++popped_;
  return f;
}

}  // namespace acc::sim
