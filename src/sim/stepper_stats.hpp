// Stepper instrumentation, shared between System (which owns one) and the
// components / C-FIFOs that report grant-driven batch transfers into it
// (ISSUE 8). Split out of system.hpp so passive objects can hold a pointer
// without pulling in the stepper.
#pragma once

#include <cstdint>

namespace acc::sim {

/// Stepper instrumentation: how much work the event-driven cores avoided.
/// All counters are per-stepper diagnostics, not simulation state — the
/// cycle-exactness contract covers component state, traces and metric
/// snapshots, while these legitimately differ between steppers.
struct StepperStats {
  std::int64_t dense_ticks = 0;      // cycles actually stepped
  std::int64_t skips = 0;            // quiescent jumps taken
  std::int64_t skipped_cycles = 0;   // cycles covered by those jumps
  std::int64_t component_ticks = 0;  // Component::tick calls (all steppers)
  std::int64_t horizon_queries = 0;  // next_event consultations
  std::int64_t wakes = 0;            // wake notifications delivered
  // Batched data plane (ISSUE 8): run-length transfers executed under a
  // wake-list exclusivity grant. Zero under the dense and global-horizon
  // steppers by construction (no grants are ever issued there).
  std::int64_t batch_runs = 0;    // granted runs of length >= 2
  std::int64_t batch_tokens = 0;  // tokens/invocations moved inside runs
};

}  // namespace acc::sim
