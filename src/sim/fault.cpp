#include "sim/fault.hpp"

#include <algorithm>

#include "sim/wake.hpp"

namespace acc::sim {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kRingLink: return "ring_link";
    case FaultSite::kConfigBus: return "config_bus";
    case FaultSite::kExitNotify: return "exit_notify";
    case FaultSite::kCreditWithhold: return "credit_withhold";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {
  // One independent stream per site: a component consulting site A never
  // perturbs the pattern another component sees at site B.
  for (int i = 0; i < kNumFaultSites; ++i) {
    sites_[static_cast<std::size_t>(i)].rng =
        SplitMix64(seed ^ (0x51faUL + 0x9e3779b97f4a7c15ULL *
                                          static_cast<std::uint64_t>(i + 1)));
  }
}

void FaultInjector::configure(FaultSite site, const FaultSpec& spec) {
  ACC_EXPECTS(spec.probability >= 0.0 && spec.probability <= 1.0);
  ACC_EXPECTS(spec.drop_probability >= 0.0 && spec.drop_probability <= 1.0);
  ACC_EXPECTS(spec.max_delay >= 0 && spec.min_spacing >= 0);
  ACC_EXPECTS_MSG(spec.probability == 0.0 || spec.max_delay >= 1,
                  "a delay fault needs max_delay >= 1");
  sites_[static_cast<std::size_t>(site)].spec = spec;
}

const FaultSpec& FaultInjector::spec(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site)].spec;
}

void FaultInjector::set_metrics(obs::MetricsRegistry* registry) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    SiteState& s = sites_[static_cast<std::size_t>(i)];
    const std::string p =
        std::string("fault.") + fault_site_name(static_cast<FaultSite>(i));
    s.m_consults = obs::make_counter(registry, p + ".consults");
    s.m_injected = obs::make_counter(registry, p + ".injected");
    s.m_dropped = obs::make_counter(registry, p + ".dropped");
    s.m_delay_cycles = obs::make_counter(registry, p + ".delay_cycles");
  }
}

bool FaultInjector::eligible(SiteState& s, Cycle now) const {
  if (!s.spec.active()) return false;
  if (now < s.spec.window_from || now >= s.spec.window_until) return false;
  return now >= s.quiet_until;
}

Cycle FaultInjector::delay(FaultSite site, Cycle now) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  if (!eligible(s, now)) return 0;
  ++s.stats.consults;
  s.m_consults.add();
  if (!s.rng.chance(s.spec.probability)) return 0;
  const Cycle d = s.rng.uniform(1, s.spec.max_delay);
  s.quiet_until = now + d + s.spec.min_spacing;
  ++s.stats.injected;
  s.m_injected.add();
  s.stats.delay_cycles += d;
  s.m_delay_cycles.add(d);
  s.stats.max_delay_seen = std::max(s.stats.max_delay_seen, d);
  if (hub_ != nullptr) hub_->fault_site_changed(site);
  return d;
}

bool FaultInjector::drop(FaultSite site, Cycle now) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  if (s.spec.drop_probability <= 0.0) return false;
  if (now < s.spec.window_from || now >= s.spec.window_until) return false;
  ++s.stats.consults;
  s.m_consults.add();
  if (!s.rng.chance(s.spec.drop_probability)) return false;
  ++s.stats.dropped;
  s.m_dropped.add();
  return true;
}

Cycle FaultInjector::next_eligible(FaultSite site, Cycle now) const {
  const SiteState& s = sites_[static_cast<std::size_t>(site)];
  if (!s.spec.active()) return kNeverCycle;
  const Cycle c = std::max({now, s.quiet_until, s.spec.window_from});
  if (c >= s.spec.window_until) return kNeverCycle;
  return c;
}

const FaultSiteStats& FaultInjector::stats(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site)].stats;
}

std::int64_t FaultInjector::total_injected() const {
  std::int64_t n = 0;
  for (const SiteState& s : sites_) n += s.stats.injected;
  return n;
}

std::int64_t FaultInjector::total_dropped() const {
  std::int64_t n = 0;
  for (const SiteState& s : sites_) n += s.stats.dropped;
  return n;
}

Cycle FaultInjector::total_delay_cycles() const {
  Cycle n = 0;
  for (const SiteState& s : sites_) n += s.stats.delay_cycles;
  return n;
}

Cycle FaultInjector::worst_case_block_delay(Cycle nominal_service,
                                            std::int64_t samples) const {
  ACC_EXPECTS(nominal_service >= 0 && samples >= 0);
  Cycle bound = 0;

  const FaultSpec& bus = spec(FaultSite::kConfigBus);
  if (bus.probability > 0.0) bound += bus.max_delay;

  const FaultSpec& notify = spec(FaultSite::kExitNotify);
  if (notify.probability > 0.0) bound += notify.max_delay;

  // Each of the block's samples crosses a faulted C-FIFO at most twice
  // (push into and pop out of a gateway-facing FIFO).
  const FaultSpec& credit = spec(FaultSite::kCreditWithhold);
  if (credit.probability > 0.0) bound += 2 * samples * credit.max_delay;

  // Ring stalls: at most one window per (stall + min_spacing) span, two
  // rings consulting the site. Stalls extend the window they land in, so
  // iterate the bound once to cover windows opened by earlier stalls.
  const FaultSpec& ring = spec(FaultSite::kRingLink);
  if (ring.probability > 0.0) {
    const Cycle span = std::max<Cycle>(ring.max_delay + ring.min_spacing, 1);
    Cycle extra = 0;
    for (int pass = 0; pass < 2; ++pass)
      extra = 2 * ((nominal_service + bound + extra) / span + 1) *
              ring.max_delay;
    bound += extra;
  }
  return bound;
}

}  // namespace acc::sim
