// C-FIFO: the software FIFO synchronization scheme (Gangwal et al., ref
// [12] of the paper) used between processor tiles and gateways.
//
// Data lives in the consumer's memory; the producer performs posted writes
// of data and of its write counter, the consumer posts back its read
// counter. Because the interconnect only supports posted writes, each
// side's view of the other's counter LAGS by the network latency. This
// class models exactly that: pushes become visible to the reader
// `read_visibility_lag` cycles later, and freed space becomes visible to
// the writer `write_visibility_lag` cycles later. Flow control is thus
// conservative but never unsafe — the behaviour the paper's dataflow model
// abstracts with the alpha0/alpha3 buffer edges.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "sim/flit.hpp"
#include "sim/ring.hpp"
#include "sim/state_hash.hpp"
#include "sim/stepper_stats.hpp"

namespace acc::sim {

class Component;

class CFifo {
 public:
  CFifo(std::string name, std::int64_t capacity, Cycle read_visibility_lag = 4,
        Cycle write_visibility_lag = 4);

  /// Writer-side: is a slot free *as visible to the writer* at `now`?
  [[nodiscard]] bool can_push(Cycle now) const;
  void push(Cycle now, Flit f);
  /// Slots the writer believes are free (conservative).
  [[nodiscard]] std::int64_t space_visible(Cycle now) const;

  /// Reader-side: samples the reader can see at `now`.
  [[nodiscard]] std::int64_t fill_visible(Cycle now) const;

  /// Event-horizon predictions (exact, not estimates): the earliest cycle
  /// >= now at which `fill_visible` / `space_visible` reaches `n`, assuming
  /// nobody pushes or pops in the meantime — which is exactly the frozen
  /// state the event-horizon stepper certifies before skipping. Returns
  /// kNeverCycle when the frozen state can never satisfy the demand (the
  /// other side must act first). Both lean on the monotone visibility
  /// deadlines push/pop maintain.
  [[nodiscard]] Cycle when_fill_visible(std::int64_t n, Cycle now) const;
  [[nodiscard]] Cycle when_space_visible(std::int64_t n, Cycle now) const;
  /// Equivalent to fill_visible(now) > 0: arrival deadlines are monotone,
  /// so only the head's deadline matters (O(1) — this guards every pop).
  [[nodiscard]] bool can_pop(Cycle now) const {
    return !data_.empty() && data_.front().visible_at <= now;
  }
  [[nodiscard]] Flit front(Cycle now) const;
  Flit pop(Cycle now);

  /// Batched writer-side transfer (ISSUE 8): push flits at virtual cycles
  /// base, base + stride, base + 2*stride, ... as one granted run. Stops
  /// before the first token whose virtual cycle is no longer covered by
  /// `self`'s batching grant (wakes raised by earlier pushes in this very
  /// run collapse the grant — the abort rule) or for which no space is
  /// visible. Returns the number pushed. Per-token accounting — visibility
  /// deadlines, credit retirement, metrics, watcher wakes — replays exactly
  /// what individual push() calls at those cycles would have done, so the
  /// run is bit-invisible to every observer. Records a StepperStats batch
  /// run when >= 2 tokens move (callers must not double-count it).
  std::size_t push_run(Cycle base, Cycle stride, std::span<const Flit> flits,
                       const Component* self);

  /// Batched reader-side transfer: pop up to `max_tokens` at virtual cycles
  /// base, base + stride, ... under the same grant / abort discipline as
  /// push_run. Each popped flit is appended to `out` and its virtual pop
  /// cycle to `stamps` (either may be null). Stops at the first virtual
  /// cycle with nothing visible to pop. Returns the number popped.
  std::size_t pop_run(Cycle base, Cycle stride, std::size_t max_tokens,
                      std::vector<Flit>* out, std::vector<Cycle>* stamps,
                      const Component* self);

  /// Ground-truth occupancy (stats/assertions, not visible to either side).
  [[nodiscard]] std::int64_t true_fill() const {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }

  /// Control-plane resize (mode change): rebind the FIFO to a new depth.
  /// Growing is always safe; shrinking is allowed only down to the
  /// outstanding-token count (queued data plus in-flight freed credits) —
  /// the mode-change protocol quiesces first, so in practice both sides are
  /// settled. Growth immediately increases writer-visible space, so pop
  /// watchers (producers waiting on credits) are woken. The occupancy
  /// histogram keeps its construction-time bucket bounds.
  void set_capacity(std::int64_t capacity);
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Visibility lags (static configuration). Batched transfers require a
  /// lag of >= 1 on the side they mutate: with a zero lag an observer can
  /// see an operation in the SAME cycle it happens, making the outcome
  /// depend on within-cycle component order — context a virtual-time
  /// operation no longer has. With lag >= 1 every observation is at least
  /// one cycle late and ordering is irrelevant.
  [[nodiscard]] Cycle read_lag() const { return rlag_; }
  [[nodiscard]] Cycle write_lag() const { return wlag_; }

  /// Lifetime counters (stats).
  [[nodiscard]] std::int64_t total_pushed() const { return pushed_; }
  [[nodiscard]] std::int64_t total_popped() const { return popped_; }
  /// Peak ground-truth occupancy ever seen.
  [[nodiscard]] std::int64_t peak_fill() const { return peak_; }

  /// Opt-in metrics (see docs/observability.md): registers
  /// cfifo.<name>.{pushed,popped,occupancy,occupancy_hist} and updates them
  /// on every push/pop — event-driven, so snapshots are stepper-exact.
  /// Null detaches (handles become no-ops).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Opt-in fault injection (kCreditWithhold): each push/pop may have its
  /// counter update delayed beyond the nominal visibility lag — a withheld
  /// software credit. Data is never lost and order is preserved; the other
  /// side just sees the update later (still conservative, still safe).
  void set_fault(FaultInjector* injector) { fault_ = injector; }

  /// Wake-list plumbing (see sim/wake.hpp): a component whose event
  /// horizon depends on this FIFO's fill (a consumer waiting for data)
  /// registers as a push watcher; one whose horizon depends on freed space
  /// (a producer waiting for credits) registers as a pop watcher. Every
  /// push/pop then requests a wake for the registered components — a no-op
  /// until the wake-list scheduler installs its hub on them. Duplicate
  /// registrations are coalesced.
  void add_push_watcher(Component* c);
  void add_pop_watcher(Component* c);

  /// Back both queues with a per-System arena (see common/arena.hpp);
  /// takes effect on the next growth. Standalone FIFOs stay heap-backed.
  void set_arena(Arena* arena) {
    data_.set_arena(arena);
    freed_.set_arena(arena);
  }

  /// Installed by System::add_fifo so push_run / pop_run report granted
  /// runs into the owning stepper's counters. Null for standalone FIFOs.
  void set_stepper_stats(StepperStats* stats) { stepper_stats_ = stats; }

  /// Canonical state snapshot (see sim/state_hash.hpp): queue contents and
  /// visibility deadlines are frozen protocol state; the lifetime counters
  /// (pushed_/popped_/peak_) are excluded by contract.
  void snapshot_state(StateHasher& h) const {
    h.mix(static_cast<std::int64_t>(data_.size()));
    for (std::size_t i = 0; i < data_.size(); ++i) {
      h.mix_cycle(data_[i].visible_at);
      h.mix(data_[i].flit);
    }
    h.mix(static_cast<std::int64_t>(freed_.size()));
    for (std::size_t i = 0; i < freed_.size(); ++i) h.mix_cycle(freed_[i]);
  }

 private:
  struct Entry {
    Cycle visible_at;  // when this flit becomes visible to the reader
    Flit flit;
  };

  /// Entries of `data_` whose deadline has passed at `now` (the visible
  /// prefix). Deadlines are monotone, so this is a binary search.
  [[nodiscard]] std::int64_t visible_data_prefix(Cycle now) const;

  void note_run(std::size_t tokens) {
    if (tokens >= 2 && stepper_stats_ != nullptr) {
      ++stepper_stats_->batch_runs;
      stepper_stats_->batch_tokens += static_cast<std::int64_t>(tokens);
    }
  }

  std::string name_;
  std::int64_t capacity_;
  Cycle rlag_;
  Cycle wlag_;

  RingBuffer<Entry> data_;   // (visible-to-reader-at, flit)
  RingBuffer<Cycle> freed_;  // space visible-to-writer-at
  FaultInjector* fault_ = nullptr;
  StepperStats* stepper_stats_ = nullptr;
  std::vector<Component*> push_watchers_;
  std::vector<Component*> pop_watchers_;
  std::int64_t pushed_ = 0;
  std::int64_t popped_ = 0;
  std::int64_t peak_ = 0;
  obs::Counter m_pushed_;
  obs::Counter m_popped_;
  obs::Gauge m_occupancy_;
  obs::Histogram m_occupancy_hist_;
  // Monotonic-time guard: visibility bookkeeping assumes non-decreasing now.
  mutable Cycle last_now_ = 0;
};

}  // namespace acc::sim
