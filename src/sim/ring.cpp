#include "sim/ring.hpp"

#include <algorithm>

#include "sim/fault.hpp"

namespace acc::sim {

Ring::Ring(std::int32_t nodes, bool clockwise)
    : slots_(static_cast<std::size_t>(nodes)),
      inject_(static_cast<std::size_t>(nodes)),
      ejected_(static_cast<std::size_t>(nodes)),
      clockwise_(clockwise) {
  ACC_EXPECTS(nodes >= 2);
}

std::vector<RingMsg> Ring::drain(std::int32_t node) {
  std::vector<RingMsg> out;
  drain_into(node, out);
  return out;
}

void Ring::set_fault(FaultInjector* injector, FaultSite site) {
  fault_ = injector;
  fault_site_ = site;
}

void Ring::set_metrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) {
  m_injected_ = obs::make_counter(registry, prefix + ".injected");
  m_delivered_ = obs::make_counter(registry, prefix + ".delivered");
  m_hops_ = obs::make_counter(registry, prefix + ".hops");
}

void Ring::tick() {
  const Cycle now = now_++;
  if (now < stall_until_) {
    ++stall_cycles_;
    return;
  }
  if (fault_ != nullptr) {
    const Cycle d = fault_->delay(fault_site_, now);
    if (d > 0) {
      stall_until_ = now + d;
      ++stall_cycles_;
      return;
    }
  }
  // Idle fast path: with every slot empty and every injection queue empty,
  // the rotation moves nothing, no node can eject or pick up, and
  // m_hops_.add(0) is a no-op. The only state the full body would touch is
  // offset_, and the offset of an all-empty slot array is unobservable —
  // skip_to already skips rotation replay for an empty ring on the same
  // grounds. The dense stepper ticks both rings every cycle, so this is
  // the common case there.
  if (occupied_ == 0 && queued_ == 0) return;
  const auto n = static_cast<std::int32_t>(slots_.size());
  // Rotate slots one hop: the slot at node i moves to node i+1 (clockwise)
  // or i-1 (counter-clockwise). Rotation is a single offset update — the
  // slot array itself never moves (no per-tick allocation or copy). The
  // offset stays in [0, n), maintained with wraps instead of modulo.
  if (clockwise_) {
    offset_ = offset_ == 0 ? slots_.size() - 1 : offset_ - 1;
  } else {
    ++offset_;
    if (offset_ == slots_.size()) offset_ = 0;
  }
  // Every occupied slot just advanced one hop. Rotations happen only on
  // non-stalled dense ticks; skipped cycles are exactly those where either
  // nothing is in flight or the ring is frozen, so this stays stepper-exact.
  m_hops_.add(occupied_);

  // At each node: eject a slot addressed to it, then fill a free slot from
  // the local injection queue. The scan stops once every occupied slot has
  // been passed and every queued message picked up — the remaining nodes
  // provably see an empty slot and an empty queue, so skipping them is a
  // pure no-op (typical streaming ticks carry one or two messages on a
  // wider ring).
  std::int64_t occ = occupied_;  // occupied slots not yet scanned past
  std::int64_t q = queued_;      // queued messages not yet offered a slot
  for (std::int32_t i = 0; i < n && (occ > 0 || q > 0); ++i) {
    Slot& s = slots_[slot_at(i)];
    if (s.occupied) {
      --occ;
      if (s.msg.dst == i) {
        ejected_[i].push_back(s.msg);
        s.occupied = false;
        ++delivered_;
        --occupied_;
        ++pending_eject_;
        m_delivered_.add();
        if (hub_ != nullptr) hub_->ring_delivery(*this, i);
      }
    }
    if (!s.occupied && q > 0 && !inject_[i].empty()) {
      s.msg = inject_[i].front();
      inject_[i].pop_front();
      s.occupied = true;
      ++occupied_;
      --queued_;
      --q;
    }
  }
}

Cycle Ring::fault_next_eligible() const {
  const Cycle first_consult = std::max(now_, stall_until_);
  return fault_->next_eligible(fault_site_, first_consult);
}

void Ring::skip_rotations(Cycle target) {
  // In-flight fast-forward: replay the rotations and the per-hop metric
  // accrual the skipped dense ticks would have performed. next_event
  // certified that no ejection (and, with queued_ == 0, no pickup) falls
  // inside the range, so the occupancy is constant across it — exactly
  // occupied_ hops per rotation. Only non-stalled cycles rotate.
  const Cycle stalled_until = std::min(target, stall_until_);
  const Cycle rotations = target - std::max(now_, stalled_until);
  if (rotations <= 0) return;
  const std::size_t n = slots_.size();
  const auto r = static_cast<std::size_t>(rotations % static_cast<Cycle>(n));
  offset_ = clockwise_ ? (offset_ + n - r) % n : (offset_ + r) % n;
  m_hops_.add(occupied_ * rotations);
}

void DualRing::set_fault(FaultInjector* injector) {
  data_.set_fault(injector, FaultSite::kRingLink);
  credit_.set_fault(injector, FaultSite::kRingLink);
}

}  // namespace acc::sim
