#include "sim/ring.hpp"

#include "sim/fault.hpp"

namespace acc::sim {

Ring::Ring(std::int32_t nodes, bool clockwise)
    : slots_(static_cast<std::size_t>(nodes)),
      inject_(static_cast<std::size_t>(nodes)),
      ejected_(static_cast<std::size_t>(nodes)),
      clockwise_(clockwise) {
  ACC_EXPECTS(nodes >= 2);
}

bool Ring::try_inject(std::int32_t node, const RingMsg& msg) {
  ACC_EXPECTS(node >= 0 && node < nodes());
  ACC_EXPECTS(msg.dst >= 0 && msg.dst < nodes());
  auto& q = inject_[node];
  if (q.size() >= kInjectQueueDepth) return false;
  q.push_back(msg);
  return true;
}

std::vector<RingMsg> Ring::drain(std::int32_t node) {
  ACC_EXPECTS(node >= 0 && node < nodes());
  std::vector<RingMsg> out;
  out.swap(ejected_[node]);
  return out;
}

void Ring::set_fault(FaultInjector* injector, FaultSite site) {
  fault_ = injector;
  fault_site_ = site;
}

void Ring::tick() {
  const Cycle now = now_++;
  if (now < stall_until_) {
    ++stall_cycles_;
    return;
  }
  if (fault_ != nullptr) {
    const Cycle d = fault_->delay(fault_site_, now);
    if (d > 0) {
      stall_until_ = now + d;
      ++stall_cycles_;
      return;
    }
  }
  const auto n = static_cast<std::int32_t>(slots_.size());
  // Rotate slots one hop: slot at node i moves to node i+1 (clockwise) or
  // i-1 (counter-clockwise).
  std::vector<Slot> next(slots_.size());
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int32_t to = clockwise_ ? (i + 1) % n : (i - 1 + n) % n;
    next[to] = slots_[i];
  }
  slots_ = std::move(next);

  // At each node: eject a slot addressed to it, then fill a free slot from
  // the local injection queue.
  for (std::int32_t i = 0; i < n; ++i) {
    Slot& s = slots_[i];
    if (s.occupied && s.msg.dst == i) {
      ejected_[i].push_back(s.msg);
      s.occupied = false;
      ++delivered_;
    }
    if (!s.occupied && !inject_[i].empty()) {
      s.msg = inject_[i].front();
      inject_[i].pop_front();
      s.occupied = true;
    }
  }
}

void DualRing::set_fault(FaultInjector* injector) {
  data_.set_fault(injector, FaultSite::kRingLink);
  credit_.set_fault(injector, FaultSite::kRingLink);
}

}  // namespace acc::sim
