#include "sim/ring.hpp"

#include <algorithm>

#include "sim/fault.hpp"
#include "sim/wake.hpp"

namespace acc::sim {

Ring::Ring(std::int32_t nodes, bool clockwise)
    : slots_(static_cast<std::size_t>(nodes)),
      inject_(static_cast<std::size_t>(nodes)),
      ejected_(static_cast<std::size_t>(nodes)),
      clockwise_(clockwise) {
  ACC_EXPECTS(nodes >= 2);
}

bool Ring::try_inject(std::int32_t node, const RingMsg& msg) {
  ACC_EXPECTS(node >= 0 && node < nodes());
  ACC_EXPECTS(msg.dst >= 0 && msg.dst < nodes());
  auto& q = inject_[node];
  if (q.size() >= kInjectQueueDepth) return false;
  q.push_back(msg);
  ++queued_;
  m_injected_.add();
  if (hub_ != nullptr) hub_->ring_activity(*this);
  return true;
}

void Ring::drain_into(std::int32_t node, std::vector<RingMsg>& out) {
  ACC_EXPECTS(node >= 0 && node < nodes());
  out.clear();
  auto& src = ejected_[node];
  if (src.empty()) return;
  out.insert(out.end(), src.begin(), src.end());
  pending_eject_ -= static_cast<std::int64_t>(src.size());
  src.clear();
}

std::int64_t Ring::drain_count(std::int32_t node) {
  ACC_EXPECTS(node >= 0 && node < nodes());
  auto& src = ejected_[node];
  const auto n = static_cast<std::int64_t>(src.size());
  pending_eject_ -= n;
  src.clear();
  return n;
}

std::vector<RingMsg> Ring::drain(std::int32_t node) {
  std::vector<RingMsg> out;
  drain_into(node, out);
  return out;
}

void Ring::set_fault(FaultInjector* injector, FaultSite site) {
  fault_ = injector;
  fault_site_ = site;
}

void Ring::set_metrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) {
  m_injected_ = obs::make_counter(registry, prefix + ".injected");
  m_delivered_ = obs::make_counter(registry, prefix + ".delivered");
  m_hops_ = obs::make_counter(registry, prefix + ".hops");
}

void Ring::tick() {
  const Cycle now = now_++;
  if (now < stall_until_) {
    ++stall_cycles_;
    return;
  }
  if (fault_ != nullptr) {
    const Cycle d = fault_->delay(fault_site_, now);
    if (d > 0) {
      stall_until_ = now + d;
      ++stall_cycles_;
      return;
    }
  }
  const auto n = static_cast<std::int32_t>(slots_.size());
  // Rotate slots one hop: the slot at node i moves to node i+1 (clockwise)
  // or i-1 (counter-clockwise). Rotation is a single offset update — the
  // slot array itself never moves (no per-tick allocation or copy). The
  // offset stays in [0, n), maintained with wraps instead of modulo.
  if (clockwise_) {
    offset_ = offset_ == 0 ? slots_.size() - 1 : offset_ - 1;
  } else {
    ++offset_;
    if (offset_ == slots_.size()) offset_ = 0;
  }
  // Every occupied slot just advanced one hop. Rotations happen only on
  // non-stalled dense ticks; skipped cycles are exactly those where either
  // nothing is in flight or the ring is frozen, so this stays stepper-exact.
  m_hops_.add(occupied_);

  // At each node: eject a slot addressed to it, then fill a free slot from
  // the local injection queue.
  for (std::int32_t i = 0; i < n; ++i) {
    Slot& s = slots_[slot_at(i)];
    if (s.occupied && s.msg.dst == i) {
      ejected_[i].push_back(s.msg);
      s.occupied = false;
      ++delivered_;
      --occupied_;
      ++pending_eject_;
      m_delivered_.add();
      if (hub_ != nullptr) hub_->ring_delivery(*this, i);
    }
    if (!s.occupied && !inject_[i].empty()) {
      s.msg = inject_[i].front();
      inject_[i].pop_front();
      s.occupied = true;
      ++occupied_;
      --queued_;
    }
  }
}

Cycle Ring::next_event() const {
  if (!idle()) {
    // Messages in flight / queued / awaiting drain: tick every cycle, or —
    // while frozen by a stall window — resume when the window releases
    // (the frozen cycles only accrue stall accounting, replayed by skip_to).
    return std::max(now_, stall_until_);
  }
  // Empty ring: a tick only matters when it would consult the fault
  // injector's RNG (an eligible consult advances the deterministic stream,
  // which is externally visible state). Skipped stall-window accounting is
  // replayed exactly by skip_to.
  if (fault_ == nullptr) return kNeverCycle;
  const Cycle first_consult = std::max(now_, stall_until_);
  return fault_->next_eligible(fault_site_, first_consult);
}

void Ring::skip_to(Cycle target) {
  if (target <= now_) return;
  // Dense ticks inside an open stall window each count one stall cycle;
  // replay that accounting for the portion of the window we jump over.
  const Cycle stalled_until = std::min(target, stall_until_);
  if (stalled_until > now_) stall_cycles_ += stalled_until - now_;
  now_ = target;
}

void DualRing::set_fault(FaultInjector* injector) {
  data_.set_fault(injector, FaultSite::kRingLink);
  credit_.set_fault(injector, FaultSite::kRingLink);
}

}  // namespace acc::sim
