// Event tracing for the MPSoC simulator: gateways and accelerator tiles
// record state transitions (admissions, reconfigurations, block
// completions, context switches) so a run can be audited or visualized.
// Opt-in: components trace only when given a TraceLog.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/ring.hpp"

namespace acc::sim {

struct TraceEvent {
  Cycle cycle = 0;
  std::string source;  // component name
  std::string event;   // e.g. "admit", "reconfig.start", "block.done"
  std::int64_t value = 0;  // event-specific payload (stream id, count, ...)
};

class TraceLog {
 public:
  /// Cap the log to avoid unbounded growth on long runs; older events are
  /// kept (the head of a run usually matters most for debugging).
  explicit TraceLog(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  void record(Cycle cycle, std::string_view source, std::string_view event,
              std::int64_t value = 0) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    if (events_.empty()) {
      // Amortized reservation: one up-front block absorbs the growth
      // reallocations short runs would otherwise pay on the hot path,
      // without committing the full cap (max_events_ can be huge).
      events_.reserve(std::min<std::size_t>(max_events_, kInitialReserve));
    }
    events_.push_back(TraceEvent{cycle, std::string(source),
                                 std::string(event), value});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t max_events() const { return max_events_; }
  /// True when the cap was hit: events() is a truncated view of the run.
  [[nodiscard]] bool truncated() const { return dropped_ > 0; }

  /// Events from one source, in order.
  [[nodiscard]] std::vector<TraceEvent> from(std::string_view source) const;
  /// Events of one kind, in order.
  [[nodiscard]] std::vector<TraceEvent> of(std::string_view event) const;

  /// "cycle,source,event,value" lines with a header row. A truncated log
  /// (events dropped at the cap) ends with a marker row
  /// "<last cycle>,trace,truncated,<dropped count>" so downstream tooling
  /// can tell a short run from a silently clipped one.
  [[nodiscard]] std::string to_csv() const;

 private:
  static constexpr std::size_t kInitialReserve = 4096;

  std::size_t max_events_;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace acc::sim
