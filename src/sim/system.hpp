// System: owns the interconnect, the tiles and the C-FIFOs, and steps the
// whole MPSoC cycle by cycle.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "sim/cfifo.hpp"
#include "sim/component.hpp"
#include "sim/ring.hpp"

namespace acc::sim {

class System {
 public:
  explicit System(std::int32_t ring_nodes) : ring_(ring_nodes) {}

  [[nodiscard]] DualRing& ring() { return ring_; }

  /// Construct and own a component; ticked in creation order.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto p = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *p;
    components_.push_back(std::move(p));
    return ref;
  }

  /// Construct and own a software FIFO.
  template <typename... Args>
  CFifo& add_fifo(Args&&... args) {
    fifos_.push_back(std::make_unique<CFifo>(std::forward<Args>(args)...));
    return *fifos_.back();
  }

  /// Run for `cycles` clock cycles.
  void run(Cycle cycles) {
    const Cycle end = now_ + cycles;
    for (; now_ < end; ++now_) {
      for (auto& c : components_) c->tick(now_);
      ring_.tick();
    }
  }

  /// Run until `pred(now)` holds or `max_cycles` elapse; returns true if
  /// the predicate fired.
  template <typename Pred>
  bool run_until(Pred&& pred, Cycle max_cycles) {
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
      if (pred(now_)) return true;
      for (auto& c : components_) c->tick(now_);
      ring_.tick();
      ++now_;
    }
    return pred(now_);
  }

  [[nodiscard]] Cycle now() const { return now_; }

 private:
  DualRing ring_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<std::unique_ptr<CFifo>> fifos_;
  Cycle now_ = 0;
};

}  // namespace acc::sim
