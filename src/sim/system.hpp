// System: owns the interconnect, the tiles and the C-FIFOs, and steps the
// whole MPSoC.
//
// Three steppers share one cycle-exact semantics:
//
//  - run_dense: the legacy loop — every component ticks every cycle.
//  - run_global_horizon: after each dense tick, ask every component and
//    both rings for the earliest cycle at which their next tick could have
//    an externally visible effect (Component::next_event). When every
//    answer lies beyond now+1 the whole system is QUIESCENT and now_ jumps
//    straight to the minimum horizon (components replay per-cycle
//    accounting via Component::skip_to). The skip is all-or-nothing: one
//    component reporting now+1 keeps the step dense, and every dense tick
//    pays an O(n) horizon re-scan.
//  - run (wake-list): each component's horizon is CACHED in a flat calendar
//    and only re-queried when its owner ticked or was woken through
//    WakeHub (sim/wake.hpp). Each cycle ticks ONLY the components whose
//    cached horizon is due — partial quiescence falls out for free (idle
//    tiles sleep while the accelerator chain streams) and certifying a
//    jump is a branch-free integer min-scan of the calendar instead of
//    O(n) virtual next_event calls. (A min-heap calendar was measured and
//    rejected: with a dozen-odd slots, re-arming every active slot each
//    cycle churns the heap harder than scanning the whole table costs.)
//    Exactness rests on two rules:
//      1. no component may act before its cached horizon unless woken, so
//         every interaction point (C-FIFO push/pop, ring inject/eject,
//         gateway callbacks, fault triggers) must route a wake;
//      2. waking EARLY is always exact (an extra tick is dense behaviour);
//         only a missed wake — acting later than dense would — diverges.
//    Frozen components are synchronized lazily: skip_to replays the
//    accounting for [last tick + 1, wake cycle) right before they run, and
//    sync_all() settles everyone when a run returns.
//    See docs/performance.md for the invariants and the equivalence proof
//    obligations (tests/sim/event_horizon_test.cpp).
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "sim/cfifo.hpp"
#include "sim/component.hpp"
#include "sim/fault.hpp"
#include "sim/ring.hpp"
#include "sim/stepper_stats.hpp"
#include "sim/wake.hpp"

namespace acc::sim {

/// Which stepper advances the system (all three are cycle-exact).
enum class StepperKind {
  kDense = 0,          // reference semantics, every component every cycle
  kGlobalHorizon = 1,  // all-or-nothing skip, O(n) re-scan per dense tick
  kWakeList = 2,       // cached horizons, selective ticking, O(active)
};

class System final : public WakeHub {
 public:
  explicit System(std::int32_t ring_nodes) : ring_(ring_nodes) {
    // Token storage (ring injection queues, C-FIFO deadline queues) bumps
    // from the per-System arena: no steady-state heap traffic, and the
    // queues of one system share locality. arena_ is declared before
    // ring_/fifos_, so it outlives every container carved from it.
    ring_.data().set_arena(&arena_);
    ring_.credit().set_arena(&arena_);
  }

  [[nodiscard]] DualRing& ring() { return ring_; }
  [[nodiscard]] const DualRing& ring() const { return ring_; }
  [[nodiscard]] const Arena& arena() const { return arena_; }

  /// Construct and own a component; ticked in creation order.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto p = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *p;
    ref.set_stepper_stats(&stats_);
    components_.push_back(std::move(p));
    wake_ready_ = false;
    return ref;
  }

  /// Construct and own a software FIFO.
  template <typename... Args>
  CFifo& add_fifo(Args&&... args) {
    fifos_.push_back(std::make_unique<CFifo>(std::forward<Args>(args)...));
    fifos_.back()->set_arena(&arena_);
    fifos_.back()->set_stepper_stats(&stats_);
    wake_ready_ = false;
    return *fifos_.back();
  }

  /// Run for `cycles` clock cycles with the wake-list stepper (cycle-exact
  /// vs run_dense; see file header). The only stepper that issues batching
  /// grants (quiet_until): run_until withholds them so its predicate
  /// observes every intermediate state dense stepping would expose.
  void run(Cycle cycles) {
    const Cycle end = now_ + cycles;
    begin_wake_run();
    run_end_ = end;
    batch_allowed_ = true;
    Cycle due = now_;  // begin_wake_run schedules every slot at now_
    while (now_ < end) {
      if (due > now_) {
        const Cycle target = std::min(due, end);
        stats_.skipped_cycles += target - now_;
        ++stats_.skips;
        now_ = target;
        if (now_ >= end) break;
      }
      due = step_wake_cycle();
    }
    batch_allowed_ = false;
    sync_all(end);
  }

  /// Run for `cycles` clock cycles with the all-or-nothing global-horizon
  /// stepper (the wake-list's predecessor — kept as a second event-driven
  /// reference for the equivalence suite).
  void run_global_horizon(Cycle cycles) {
    wake_ready_ = false;  // cached wake state goes stale under this stepper
    const Cycle end = now_ + cycles;
    while (now_ < end) {
      step_dense();
      skip_if_quiescent(end);
    }
  }

  /// Run for `cycles` clock cycles, ticking every component every cycle
  /// (the legacy stepper — reference semantics for equivalence tests).
  void run_dense(Cycle cycles) {
    wake_ready_ = false;
    const Cycle end = now_ + cycles;
    for (; now_ < end; ++now_) {
      for (auto& c : components_) c->tick(now_);
      ring_.tick();
      ++stats_.dense_ticks;
      stats_.component_ticks += static_cast<std::int64_t>(components_.size());
    }
  }

  /// Dispatch on a stepper selection (bench/config surface).
  void run_with(StepperKind kind, Cycle cycles) {
    switch (kind) {
      case StepperKind::kDense: run_dense(cycles); return;
      case StepperKind::kGlobalHorizon: run_global_horizon(cycles); return;
      case StepperKind::kWakeList: run(cycles); return;
    }
  }

  /// Run until `pred(now)` holds or `max_cycles` elapse; returns true if
  /// the predicate fired. Uses the wake-list stepper: `pred` must be a
  /// function of simulation STATE (not of the numeric value of `now`), so
  /// that its value cannot change across a certified-quiescent range. The
  /// predicate is evaluated exactly once per loop step — at every stepped
  /// cycle and at every jump target — with all lazily-synchronized
  /// accounting settled first.
  template <typename Pred>
  bool run_until(Pred&& pred, Cycle max_cycles) {
    const Cycle end = now_ + max_cycles;
    begin_wake_run();
    while (now_ < end) {
      sync_all(now_);
      if (pred(now_)) return true;
      const Cycle due = next_due();
      if (due > now_) {
        const Cycle target = std::min(due, end);
        stats_.skipped_cycles += target - now_;
        ++stats_.skips;
        now_ = target;
        continue;
      }
      (void)step_wake_cycle();
    }
    sync_all(end);
    return pred(now_);
  }

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] const StepperStats& stepper_stats() const { return stats_; }

  // --- Introspection (bounded model checker / wake audit, src/verify/) ---

  [[nodiscard]] std::size_t num_components() const {
    return components_.size();
  }
  [[nodiscard]] Component& component(std::size_t i) { return *components_[i]; }
  [[nodiscard]] const Component& component(std::size_t i) const {
    return *components_[i];
  }
  [[nodiscard]] std::size_t num_fifos() const { return fifos_.size(); }
  [[nodiscard]] CFifo& fifo(std::size_t i) { return *fifos_[i]; }
  [[nodiscard]] const CFifo& fifo(std::size_t i) const { return *fifos_[i]; }

  /// Canonical frozen digest of the whole system (every component in
  /// registration order, every owned C-FIFO, both rings), with deadlines
  /// canonicalized relative to now(). Equal digests mean equal futures
  /// under identical environment actions — the explorer's dedup key.
  [[nodiscard]] std::uint64_t state_digest() const {
    StateHasher h(now_);
    for (const auto& c : components_) {
      c->snapshot_state(h);
      h.mix(std::uint64_t{0x5EB1});  // component delimiter
    }
    for (const auto& f : fifos_) {
      f->snapshot_state(h);
      h.mix(std::uint64_t{0x5EB2});
    }
    ring_.data().snapshot_state(h);
    ring_.credit().snapshot_state(h);
    return h.frozen();
  }

  // --- WakeHub (wake-list stepper plumbing; see sim/wake.hpp) ------------

  void wake(Component& c) override {
    if (!wake_ready_) return;
    // prepare_wake stamped the slot index on the component; only this
    // system installs component hubs, so the index is always ours.
    const std::size_t idx = c.wake_slot();
    if (grant_live_ && idx < processing_pos_) {
      // Batched run in progress: a conservative "schedule at now_ + 1"
      // would collapse the grant on every watcher notification, even when
      // the watcher demonstrably sleeps far beyond the batch window. Slots
      // BELOW the granted one already had their dense-order turn this
      // cycle, so their earliest possible reaction is next_event(now_) —
      // re-deriving it here is exact (never later than dense) and keeps
      // the window open when the woken component genuinely stays idle.
      // Slots at or above the granted one may still act THIS cycle, so
      // they take the conservative path, which aborts the batch.
      ++stats_.wakes;
      ++stats_.horizon_queries;
      const Cycle h = c.next_event(now_);
      const Cycle target =
          h == kNeverCycle ? kNeverCycle : std::max(h, now_ + 1);
      Slot& s = slots_[idx];
      if (target < s.at) {
        s.at = target;
        wake_floor_min_ = std::min(wake_floor_min_, target);
      }
      return;
    }
    wake_slot(idx);
  }

  void ring_activity(Ring& r) override {
    if (!wake_ready_) return;
    wake_slot(&r == &ring_.data() ? data_slot() : credit_slot());
  }

  void ring_delivery(Ring& r, std::int32_t node) override {
    (void)r;  // both rings deliver to the same node owner
    if (!wake_ready_) return;
    const std::size_t owner = node_owner_[static_cast<std::size_t>(node)];
    if (owner != kNoSlot) wake_slot(owner);
  }

  void fault_site_changed(FaultSite site) override {
    // Only kRingLink feeds cached horizons (Ring::next_event consults
    // next_eligible); the other sites' RNG draws happen inside component
    // ticks that are scheduled anyway. A trigger moves quiet_until FORWARD,
    // so the fresh horizon may be later than the cached one — re-deriving
    // it (rather than the schedule-early wake rule) is what keeps the rings
    // skippable across the quiet window.
    if (!wake_ready_ || site != FaultSite::kRingLink) return;
    requery_ring(data_slot());
    requery_ring(credit_slot());
  }

  /// Batching grant (see sim/wake.hpp): min over every OTHER slot's
  /// scheduled cycle, clamped to the end of the active run(). Grants are
  /// only issued mid-cycle under the wake-list stepper with batching
  /// allowed, and never while a wake-unsafe component exists (its parked
  /// slot carries no schedule the window could trust). Issuing a grant
  /// arms the requery-on-wake path above until the granted tick returns.
  [[nodiscard]] Cycle quiet_until(std::size_t self_slot) const override {
    if (!wake_ready_ || !processing_ || !batch_allowed_ || !unsafe_.empty())
      return 0;
    Cycle m = run_end_;
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (j != self_slot) m = std::min(m, slots_[j].at);
    }
    grant_live_ = true;
    return m;
  }

 private:
  /// Scheduling slot per unit: components 0..n-1 in registration order,
  /// then the data ring, then the credit ring — matching the dense tick
  /// order, which the active-cycle scan preserves by visiting slots in
  /// ascending index order.
  struct Slot {
    Cycle at = 0;       // authoritative scheduled cycle (kNeverCycle = parked)
    Cycle synced = -1;  // last cycle whose accounting is settled
  };

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t data_slot() const { return slots_.size() - 2; }
  [[nodiscard]] std::size_t credit_slot() const { return slots_.size() - 1; }

  /// One dense cycle: every component, then the interconnect.
  void step_dense() {
    for (auto& c : components_) c->tick(now_);
    ring_.tick();
    ++now_;
    ++stats_.dense_ticks;
    stats_.component_ticks += static_cast<std::int64_t>(components_.size());
  }

  /// Global-horizon core: if every horizon lies beyond the next cycle, jump
  /// to the earliest one (clamped to `end`), replaying per-cycle accounting
  /// along the way.
  void skip_if_quiescent(Cycle end) {
    const Cycle ticked = now_ - 1;  // cycle step_dense just completed
    ++stats_.horizon_queries;
    Cycle h = ring_.next_event();
    for (const auto& c : components_) {
      if (h <= now_) return;  // someone acts next cycle: stay dense
      ++stats_.horizon_queries;
      h = std::min(h, c->next_event(ticked));
    }
    const Cycle target = std::min(h, end);
    if (target <= now_) return;
    for (auto& c : components_) c->skip_to(now_, target);
    ring_.skip_to(target);
    stats_.skipped_cycles += target - now_;
    ++stats_.skips;
    now_ = target;
  }

  // --- Wake-list core ----------------------------------------------------

  /// (Re)build the wake-list bookkeeping: slot table, component index,
  /// ring-node routing and hub installation. Invalidated by add/add_fifo
  /// and by the other steppers (which advance state without maintaining
  /// cached horizons).
  void prepare_wake() {
    const std::size_t n = components_.size();
    slots_.assign(n + 2, Slot{});
    unsafe_.clear();
    unsafe_mask_.assign(n, false);
    node_owner_.assign(static_cast<std::size_t>(ring_.data().nodes()),
                       kNoSlot);
    for (std::size_t i = 0; i < n; ++i) {
      Component* c = components_[i].get();
      c->set_wake_hub(this, i);
      if (!c->wake_list_safe()) {
        unsafe_.push_back(i);
        unsafe_mask_[i] = true;
      }
      const std::int32_t node = c->ring_node();
      if (node >= 0) {
        ACC_CHECK_MSG(node < ring_.data().nodes(),
                      "ring_node out of range for the wake-list scheduler");
        std::size_t& owner = node_owner_[static_cast<std::size_t>(node)];
        ACC_CHECK_MSG(owner == kNoSlot,
                      "two components drain the same ring node");
        owner = i;
      }
    }
    ring_.data().set_wake_hub(this);
    ring_.credit().set_wake_hub(this);
    if (FaultInjector* f = ring_.data().fault()) f->set_wake_hub(this);
    if (FaultInjector* f = ring_.credit().fault()) f->set_wake_hub(this);
    for (std::size_t i = 0; i < slots_.size(); ++i) slots_[i].synced = now_ - 1;
    wake_ready_ = true;
  }

  /// Entry of every wake-list run: make the first cycle fully dense so
  /// state mutated BETWEEN runs (test scaffolding poking components or
  /// FIFOs directly, without a wake) is observed before any jump.
  void begin_wake_run() {
    if (!wake_ready_) prepare_wake();
    for (Slot& s : slots_) s.at = now_;
  }

  /// Earliest authoritative scheduled cycle, or kNeverCycle when every
  /// slot is parked. A plain min over the calendar: slot counts are small
  /// (tiles + gateways + two rings), so the scan is a handful of integer
  /// compares — cheaper per active cycle than maintaining a heap.
  [[nodiscard]] Cycle next_due() const {
    Cycle m = kNeverCycle;
    for (const Slot& s : slots_) m = std::min(m, s.at);
    return m;
  }

  /// Step one ACTIVE cycle: run every due slot in ascending index order
  /// (components before rings, matching dense). Wakes raised mid-cycle for
  /// not-yet-scanned slots land at `now_` and are picked up by the same
  /// scan; wakes for already-passed slots land at now_ + 1 — exactly when
  /// the dense loop would have let them observe the interaction.
  ///
  /// Returns the earliest due cycle after the step (the next_due() scan is
  /// fused into the processing scan — one calendar pass per active cycle
  /// instead of two). Visited slots can be LOWERED afterwards only through
  /// wake_slot / the grant requery path, both of which feed
  /// wake_floor_min_; they can be RAISED only by a mid-cycle ring requery
  /// (fault triggers), which makes the returned minimum conservative-early
  /// — the next iteration scans again, finds nothing due, and returns the
  /// fresh minimum without stepping (the !any path below), so stats stay
  /// identical to the unfused loop.
  [[nodiscard]] Cycle step_wake_cycle() {
    const Cycle t = now_;
    processing_ = true;
    wake_floor_min_ = kNeverCycle;
    Cycle min_next = kNeverCycle;
    bool any = false;
    for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
      if (slots_[idx].at > t) {
        min_next = std::min(min_next, slots_[idx].at);
        continue;
      }
      any = true;
      processing_pos_ = idx;
      run_slot(idx, t);
      min_next = std::min(min_next, slots_[idx].at);
    }
    if (!any) {
      // Stale minimum (a horizon was raised since it was computed): no
      // slot was due, nothing ticked — report the fresh minimum only.
      processing_ = false;
      return min_next;
    }
    // Wake-unsafe components get the global-horizon treatment: a fresh
    // query after every active cycle, so their hints never go stale.
    for (const std::size_t idx : unsafe_) {
      ++stats_.horizon_queries;
      schedule_horizon(idx, components_[idx]->next_event(t), t + 1);
      min_next = std::min(min_next, slots_[idx].at);
    }
    processing_ = false;
    ++now_;
    ++stats_.dense_ticks;
    return std::min(min_next, wake_floor_min_);
  }

  /// Sync a frozen slot's accounting through `t - 1`, tick it at `t`, and
  /// cache its fresh horizon.
  void run_slot(std::size_t idx, Cycle t) {
    Slot& s = slots_[idx];
    if (idx < components_.size()) {
      Component& c = *components_[idx];
      if (s.synced < t - 1) c.skip_to(s.synced + 1, t);
      s.synced = t;
      ++stats_.component_ticks;
      c.tick(t);
      grant_live_ = false;  // any batching grant expires with its tick
      if (unsafe_mask_[idx]) {
        s.at = kNeverCycle;  // re-queried after the cycle completes
        return;
      }
      ++stats_.horizon_queries;
      schedule_horizon(idx, c.next_event(t), t + 1);
    } else {
      Ring& r = idx == data_slot() ? ring_.data() : ring_.credit();
      if (r.cycle() < t) r.skip_to(t);
      s.synced = t;
      r.tick();
      ++stats_.horizon_queries;
      schedule_horizon(idx, r.next_event(), t + 1);
    }
  }

  /// Cache horizon `h` for `idx`, clamped to `floor` (kNeverCycle parks
  /// the slot out of the calendar until a wake).
  void schedule_horizon(std::size_t idx, Cycle h, Cycle floor) {
    slots_[idx].at = h == kNeverCycle ? kNeverCycle : std::max(h, floor);
  }

  /// Deliver a wake: schedule the slot at now_ — or now_ + 1 if this cycle
  /// already processed it (the dense loop, too, would only let it react
  /// next cycle). Never moves a slot later.
  void wake_slot(std::size_t idx) {
    ++stats_.wakes;
    const Cycle target =
        processing_ && idx <= processing_pos_ ? now_ + 1 : now_;
    Slot& s = slots_[idx];
    if (target < s.at) {
      s.at = target;
      wake_floor_min_ = std::min(wake_floor_min_, target);
    }
  }

  /// Re-derive a ring slot's horizon from scratch (fault triggers move
  /// quiet windows forward, so the fresh value may be LATER than the cached
  /// one — still conservative: next_eligible never undershoots truth).
  void requery_ring(std::size_t idx) {
    Ring& r = idx == data_slot() ? ring_.data() : ring_.credit();
    ++stats_.horizon_queries;
    const Cycle floor =
        processing_ && idx <= processing_pos_ ? now_ + 1 : now_;
    schedule_horizon(idx, r.next_event(), floor);
    // Keep the fused next-due minimum sound if this LOWERED a slot the
    // processing scan already visited (raises are covered by the stale-
    // minimum rescan in step_wake_cycle).
    wake_floor_min_ = std::min(wake_floor_min_, slots_[idx].at);
  }

  /// Settle every frozen slot's lazily-deferred accounting through
  /// `upto - 1` (callers read counters and stats after run()/run_until()
  /// returns, and predicates read them at evaluation points).
  void sync_all(Cycle upto) {
    for (std::size_t i = 0; i < components_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.synced < upto - 1) {
        components_[i]->skip_to(s.synced + 1, upto);
        s.synced = upto - 1;
      }
    }
    if (ring_.data().cycle() < upto) ring_.data().skip_to(upto);
    if (ring_.credit().cycle() < upto) ring_.credit().skip_to(upto);
  }

  Arena arena_;  // declared first: backs ring_ and fifos_ token storage
  DualRing ring_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<std::unique_ptr<CFifo>> fifos_;
  Cycle now_ = 0;
  StepperStats stats_;

  // Wake-list state (valid while wake_ready_).
  bool wake_ready_ = false;
  std::vector<Slot> slots_;
  std::vector<std::size_t> node_owner_;  // ring node -> component slot
  std::vector<std::size_t> unsafe_;      // wake-unsafe component slots
  std::vector<bool> unsafe_mask_;
  bool processing_ = false;        // inside step_wake_cycle
  std::size_t processing_pos_ = 0; // slot currently (or last) run this cycle
  Cycle wake_floor_min_ = kNeverCycle;  // lowest at lowered mid-cycle
  // Batched-data-plane grant state (ISSUE 8): grants exist only inside
  // run() — run_until's predicate must observe dense-visible intermediate
  // states, so it never allows them.
  bool batch_allowed_ = false;
  Cycle run_end_ = 0;
  mutable bool grant_live_ = false;  // a granted tick is in progress
};

}  // namespace acc::sim
