// System: owns the interconnect, the tiles and the C-FIFOs, and steps the
// whole MPSoC.
//
// Two steppers share one cycle-exact semantics:
//
//  - run_dense: the legacy loop — every component ticks every cycle.
//  - run (event-horizon): after a dense tick, ask every component and both
//    rings for the earliest cycle at which their next tick could have an
//    externally visible effect (Component::next_event). When every answer
//    lies beyond now+1 the whole system is QUIESCENT: nothing will act, so
//    nobody's inputs change, so the frozen state persists — and now_ can
//    jump straight to the minimum horizon (components replay per-cycle
//    accounting via Component::skip_to). The skip is all-or-nothing: one
//    component reporting now+1 keeps the step dense, which is what makes a
//    conservative (never-overshooting) horizon sufficient for exactness.
//    See docs/performance.md for the invariants and the equivalence proof
//    obligations (tests/sim/event_horizon_test.cpp).
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/cfifo.hpp"
#include "sim/component.hpp"
#include "sim/ring.hpp"

namespace acc::sim {

/// Stepper instrumentation: how much work the event-horizon core avoided.
struct StepperStats {
  std::int64_t dense_ticks = 0;    // cycles actually ticked
  std::int64_t skips = 0;          // quiescent jumps taken
  std::int64_t skipped_cycles = 0; // cycles covered by those jumps
};

class System {
 public:
  explicit System(std::int32_t ring_nodes) : ring_(ring_nodes) {}

  [[nodiscard]] DualRing& ring() { return ring_; }

  /// Construct and own a component; ticked in creation order.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto p = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *p;
    components_.push_back(std::move(p));
    return ref;
  }

  /// Construct and own a software FIFO.
  template <typename... Args>
  CFifo& add_fifo(Args&&... args) {
    fifos_.push_back(std::make_unique<CFifo>(std::forward<Args>(args)...));
    return *fifos_.back();
  }

  /// Run for `cycles` clock cycles with the event-horizon stepper
  /// (cycle-exact vs run_dense; see file header).
  void run(Cycle cycles) {
    const Cycle end = now_ + cycles;
    while (now_ < end) {
      step_dense();
      skip_if_quiescent(end);
    }
  }

  /// Run for `cycles` clock cycles, ticking every component every cycle
  /// (the legacy stepper — reference semantics for equivalence tests).
  void run_dense(Cycle cycles) {
    const Cycle end = now_ + cycles;
    for (; now_ < end; ++now_) {
      for (auto& c : components_) c->tick(now_);
      ring_.tick();
      ++stats_.dense_ticks;
    }
  }

  /// Run until `pred(now)` holds or `max_cycles` elapse; returns true if
  /// the predicate fired. Uses the event-horizon stepper: `pred` must be a
  /// function of simulation STATE (not of the numeric value of `now`), so
  /// that its value cannot change across a certified-quiescent range — it
  /// is evaluated before every dense tick and before every skip.
  template <typename Pred>
  bool run_until(Pred&& pred, Cycle max_cycles) {
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
      if (pred(now_)) return true;
      step_dense();
      if (now_ < end && !pred(now_)) skip_if_quiescent(end);
    }
    return pred(now_);
  }

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] const StepperStats& stepper_stats() const { return stats_; }

 private:
  /// One dense cycle: every component, then the interconnect.
  void step_dense() {
    for (auto& c : components_) c->tick(now_);
    ring_.tick();
    ++now_;
    ++stats_.dense_ticks;
  }

  /// If every horizon lies beyond the next cycle, jump to the earliest one
  /// (clamped to `end`), replaying per-cycle accounting along the way.
  void skip_if_quiescent(Cycle end) {
    const Cycle ticked = now_ - 1;  // cycle step_dense just completed
    Cycle h = ring_.next_event();
    for (const auto& c : components_) {
      if (h <= now_) return;  // someone acts next cycle: stay dense
      h = std::min(h, c->next_event(ticked));
    }
    const Cycle target = std::min(h, end);
    if (target <= now_) return;
    for (auto& c : components_) c->skip_to(now_, target);
    ring_.skip_to(target);
    stats_.skipped_cycles += target - now_;
    ++stats_.skips;
    now_ = target;
  }

  DualRing ring_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<std::unique_ptr<CFifo>> fifos_;
  Cycle now_ = 0;
  StepperStats stats_;
};

}  // namespace acc::sim
