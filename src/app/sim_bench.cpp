#include "app/sim_bench.hpp"

#include <chrono>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

namespace acc::app {
namespace {

/// Deterministic digest of the decoded audio: FNV-1a over each channel's
/// samples quantized to 16 fractional bits. Exact (not tolerance-based), so
/// digest equality means the two steppers produced bit-identical DAC input.
std::int64_t audio_checksum(const PalSimResult& res) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](const std::vector<double>& ch) {
    for (double v : ch) {
      const auto q = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(std::llround(v * 65536.0)));
      for (int i = 0; i < 8; ++i) {
        h ^= (q >> (8 * i)) & 0xffULL;
        h *= 1099511628211ULL;  // FNV prime
      }
    }
  };
  mix(res.left);
  mix(res.right);
  return static_cast<std::int64_t>(h);
}

std::int64_t total_blocks(const PalSimResult& res) {
  std::int64_t n = 0;
  for (std::int64_t b : res.blocks_per_stream) n += b;
  return n;
}

json::Object run_to_json(const SimBenchRun& r) {
  json::Object o;
  o["mode"] = r.mode;
  o["wall_ms"] = r.wall_ms;
  o["cycles"] = r.cycles;
  // A --sim-fast run can finish inside the clock's ms resolution; a rate
  // computed from a zero wall time would be infinite (and not valid JSON),
  // so the field goes null instead of lying with 0 or inf.
  if (std::isfinite(r.cycles_per_sec))
    o["cycles_per_sec"] = r.cycles_per_sec;
  else
    o["cycles_per_sec"] = nullptr;
  o["dense_ticks"] = r.dense_ticks;
  o["skips"] = r.skips;
  o["skipped_cycles"] = r.skipped_cycles;
  o["component_ticks"] = r.component_ticks;
  o["horizon_queries"] = r.horizon_queries;
  o["wakes"] = r.wakes;
  o["batch_runs"] = r.batch_runs;
  o["batch_tokens"] = r.batch_tokens;
  o["sink_samples"] = r.sink_samples;
  o["source_drops"] = r.source_drops;
  o["sink_underruns"] = r.sink_underruns;
  o["blocks"] = r.blocks;
  o["audio_checksum"] = r.audio_checksum;
  return o;
}

}  // namespace

PalSimConfig sim_bench_pal_config(bool fast) {
  PalSimConfig cfg;
  // The paper's demonstrator, unmodified — the bench measures the stepper,
  // not a synthetic workload. Fast mode only shortens the input.
  // Fast mode must still push real audio through the chain (the stage-1
  // block is eta ~ 2672 samples), so the outcome digest compares non-empty
  // sample streams, not two empty sinks.
  cfg.input_samples = fast ? (1 << 13) : (1 << 16);
  return cfg;
}

SimBenchRun sim_bench_run(const PalSimConfig& pal, sim::StepperKind kind) {
  PalSimConfig cfg = pal;
  cfg.stepper = kind;

  // The input waveform is a pure function of the scenario, identical across
  // the three stepper modes; synthesizing it is trig-heavy (one sin/cos per
  // front-end sample). Keep it outside the timed region so wall_ms measures
  // the stepper under comparison, not three renderings of the same signal.
  // Callers that pre-set prebuilt_input amortize it across all modes.
  std::vector<sim::Flit> input;
  if (cfg.prebuilt_input == nullptr) {
    input = synthesize_pal_input(cfg);
    cfg.prebuilt_input = &input;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const PalSimResult res = run_pal_decoder(cfg);
  const auto t1 = std::chrono::steady_clock::now();

  SimBenchRun r;
  switch (kind) {
    case sim::StepperKind::kDense:
      r.mode = "dense";
      break;
    case sim::StepperKind::kGlobalHorizon:
      r.mode = "event";
      break;
    default:
      r.mode = "wake_list";
      break;
  }
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.cycles = res.cycles_run;
  // NaN marks "wall clock below resolution" — serialized as null.
  r.cycles_per_sec =
      r.wall_ms > 0.0 ? static_cast<double>(r.cycles) / (r.wall_ms / 1000.0)
                      : std::numeric_limits<double>::quiet_NaN();
  r.dense_ticks = res.stepper.dense_ticks;
  r.skips = res.stepper.skips;
  r.skipped_cycles = res.stepper.skipped_cycles;
  r.component_ticks = res.stepper.component_ticks;
  r.horizon_queries = res.stepper.horizon_queries;
  r.wakes = res.stepper.wakes;
  r.batch_runs = res.stepper.batch_runs;
  r.batch_tokens = res.stepper.batch_tokens;
  r.sink_samples = static_cast<std::int64_t>(res.left.size() +
                                             res.right.size());
  r.source_drops = res.source_drops;
  r.sink_underruns = res.sink_underruns;
  r.blocks = total_blocks(res);
  r.audio_checksum = audio_checksum(res);
  return r;
}

json::Value sim_bench_doc(const PalSimConfig& pal, const SimBenchRun& dense,
                          const SimBenchRun& event, const SimBenchRun& wake) {
  json::Object workload;
  workload["input_samples"] = static_cast<std::int64_t>(pal.input_samples);
  workload["input_period"] = static_cast<std::int64_t>(pal.input_period);
  workload["reconfig"] = static_cast<std::int64_t>(pal.reconfig);

  json::Array runs;
  runs.emplace_back(run_to_json(dense));
  runs.emplace_back(run_to_json(event));
  runs.emplace_back(run_to_json(wake));

  json::Object doc;
  doc["bench"] = "sim";
  doc["workload"] = std::move(workload);
  doc["runs"] = std::move(runs);
  // Headline number: the shipping (wake-list) stepper against the dense
  // reference. Null when either wall clock was below resolution.
  if (std::isfinite(dense.cycles_per_sec) && dense.cycles_per_sec > 0.0 &&
      std::isfinite(wake.cycles_per_sec))
    doc["speedup"] = wake.cycles_per_sec / dense.cycles_per_sec;
  else
    doc["speedup"] = nullptr;
  doc["equivalent"] =
      dense.same_outcome(event) && dense.same_outcome(wake);
  return json::Value(std::move(doc));
}

}  // namespace acc::app
