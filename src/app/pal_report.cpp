#include "app/pal_report.hpp"

#include "obs/run_report.hpp"
#include "sharing/report.hpp"

namespace acc::app {

const char* stepper_name(sim::StepperKind kind) {
  switch (kind) {
    case sim::StepperKind::kDense: return "dense";
    case sim::StepperKind::kGlobalHorizon: return "global-horizon";
    case sim::StepperKind::kWakeList: return "wake-list";
  }
  return "unknown";
}

json::Value pal_run_report(const PalSimConfig& cfg, const PalSimResult& res,
                           const obs::MetricsRegistry& registry,
                           const sim::TraceLog* trace) {
  const sharing::SharedSystemSpec spec = make_system_spec(cfg);
  const std::vector<std::int64_t> etas = {res.eta_stage1, res.eta_stage1,
                                          res.eta_stage2, res.eta_stage2};

  // With no trace there is nothing to join; an empty log yields the bounds
  // with observed = -1, which the schema renders as margin = bound.
  const sim::TraceLog empty{1};
  const std::vector<sharing::ObservedStream> observed =
      sharing::observe_streams(spec, etas, trace != nullptr ? *trace : empty);

  obs::RunReportInput in;
  in.workload = "pal-decoder";
  in.cycles_run = res.cycles_run;
  in.stepper = stepper_name(cfg.stepper);
  in.params["input_samples"] =
      json::Value(static_cast<std::int64_t>(cfg.input_samples));
  in.params["input_period"] = json::Value(cfg.input_period);
  in.params["epsilon"] = json::Value(cfg.epsilon);
  in.params["delta"] = json::Value(cfg.delta);
  in.params["reconfig"] = json::Value(cfg.reconfig);
  in.params["eta_stage1"] = json::Value(res.eta_stage1);
  in.params["eta_stage2"] = json::Value(res.eta_stage2);
  in.params["gamma"] = json::Value(res.gamma);
  in.verdict["source_drops"] = json::Value(res.source_drops);
  in.verdict["sink_underruns"] = json::Value(res.sink_underruns);
  in.verdict["realtime_met"] =
      json::Value(res.source_drops == 0 && res.sink_underruns == 0);

  for (std::size_t s = 0; s < spec.num_streams(); ++s) {
    obs::RunReportStream row;
    row.id = static_cast<std::int64_t>(s);
    row.name = spec.streams[s].name;
    row.eta = etas[s];
    row.blocks = observed[s].blocks;
    row.service_observed = observed[s].max_service;
    row.service_bound = observed[s].service_bound;
    row.spacing_observed = observed[s].max_spacing;
    row.spacing_bound = observed[s].spacing_bound;
    in.streams.push_back(std::move(row));
  }
  return obs::run_report_doc(in, registry, trace);
}

std::string pal_run_report_json(const PalSimConfig& cfg,
                                const PalSimResult& res,
                                const obs::MetricsRegistry& registry,
                                const sim::TraceLog* trace) {
  return pal_run_report(cfg, res, registry, trace).pretty() + "\n";
}

}  // namespace acc::app
