// acc-lint — static model verifier for shared-accelerator configurations.
//
//   usage: acc-lint [options] config.json [more-configs.json...]
//
// Checks a system configuration (sharing/serialize.hpp spec format, plus the
// optional extended sections described in docs/static_analysis.md) against
// the full rule catalog WITHOUT running the simulator: dataflow consistency
// and deadlock-freedom, Eq. 2-4 preconditions, throughput feasibility
// (Eq. 5), gateway-chain well-formedness, C-FIFO admissibility, fault-config
// sanity and determinism hazards.
//
// Exit status: 0 = every config is clean (warnings/notes allowed),
//              1 = usage error, unreadable file or invalid JSON syntax,
//              2 = at least one config has error-tier findings.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: acc-lint [options] config.json [more-configs.json...]\n"
        "\n"
        "options:\n"
        "  --json         emit the acc-lint-v1 JSON document instead of text\n"
        "                 (exactly one config)\n"
        "  --rules        print the rule catalog and exit\n"
        "  --allow RULE   suppress a rule by ID or name (repeatable)\n"
        "  --quiet        print nothing for clean configs\n"
        "  -h, --help     this message\n";
}

void print_rules(std::ostream& os) {
  for (const acc::lint::RuleInfo& r : acc::lint::kRules) {
    os << r.id << "  " << acc::lint::severity_name(r.severity) << "  "
       << r.name << "\n      " << r.summary << "\n";
  }
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acc;

  bool json_out = false;
  bool quiet = false;
  lint::LintOptions opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_out = true;
    } else if (arg == "--rules") {
      print_rules(std::cout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--allow") {
      if (i + 1 >= argc) {
        std::cerr << "acc-lint: --allow needs a rule ID\n";
        return 1;
      }
      // Validated by the library (an unknown rule becomes a C01 error in
      // the report itself), so --json consumers see the bad waiver too.
      opts.suppress.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "acc-lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    print_usage(std::cerr);
    return 1;
  }
  if (json_out && paths.size() != 1) {
    std::cerr << "acc-lint: --json takes exactly one config\n";
    return 1;
  }

  bool any_errors = false;
  for (const std::string& path : paths) {
    std::ifstream f(path);
    if (!f) {
      std::cerr << "acc-lint: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::optional<json::Value> doc = json::parse(buf.str());
    if (!doc.has_value()) {
      std::cerr << "acc-lint: " << path << ": invalid JSON\n";
      return 1;
    }
    // Report under the basename so output is stable across checkouts
    // (golden fixtures diff it byte-for-byte).
    const lint::LintReport rep =
        lint::lint_config_json(*doc, basename_of(path), opts);
    if (json_out) {
      std::cout << rep.to_json().pretty() << "\n";
    } else if (!quiet || !rep.clean()) {
      std::cout << rep.to_text();
    }
    any_errors |= !rep.clean();
  }
  return any_errors ? 2 : 0;
}
