// E14 — scripted session churn on the dynamic control plane (src/ctrl/).
//
// Replays a seeded join/leave trace (ctrl/workload.hpp) against a live
// gateway chain: every join is decided online by the AdmissionController,
// every accepted transition is executed by the ModeChangeProtocol on the
// RUNNING simulator, and every admitted session streams real samples
// through per-stream source/sink tiles whose drop/underrun counters define
// the deadline-miss verdict.
//
// The campaign is deterministic by construction: the trace, every sample,
// and every admission decision derive from the seed alone; analysis cost is
// counted in integer work units (never wall clock); and the same scripted
// session sequence is replayed under all three cycle-exact steppers, whose
// final state digests and audio checksums must agree. The resulting
// BENCH_admission.json is therefore bit-identical for any --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "ctrl/admission.hpp"
#include "ctrl/workload.hpp"
#include "lint/linter.hpp"
#include "obs/metrics.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace acc::app {

/// One stream template sessions instantiate (the "accelerator setting" a
/// joining radio requests).
struct ChurnTemplate {
  std::string name;
  /// Input sample period (mu = 1/period samples per cycle).
  sim::Cycle period = 16;
  /// Output decimation of the template's kernel chain (the last accelerator
  /// runs a decimator when > 1); block sizes are decimation-aligned.
  std::int64_t decimation = 1;
  /// Context-switch cost R_s (config-bus programming window).
  sim::Cycle reconfig = 96;
};

struct ChurnConfig {
  ctrl::WorkloadConfig workload;
  /// Templates joined by index from the trace; size must be >=
  /// workload.num_templates.
  std::vector<ChurnTemplate> templates{
      {"voice", 16, 1, 96},
      {"music", 32, 2, 128},
  };

  // Shared chain (modest costs keep the 200-event trace in ctest range).
  std::vector<sim::Cycle> accel_cycles{1, 1};
  sim::Cycle epsilon = 2;
  sim::Cycle delta = 1;
  std::int64_t ni_capacity = 2;
  sim::Cycle exit_notify_lag = 4;

  // Admission-control envelope.
  std::int64_t eta_max = 512;
  std::int64_t eta_align = 32;

  // Session shape: each admitted session streams `blocks_per_session`
  // blocks end to end; its sink buffers `prefill_blocks` blocks before the
  // DAC grid starts; its C-FIFOs carry `fifo_slack` blocks of depth.
  std::int64_t blocks_per_session = 6;
  std::int64_t prefill_blocks = 2;
  std::int64_t fifo_slack = 4;

  /// Cycles run after every trace event (session inter-arrival time).
  sim::Cycle event_gap = 1024;
  /// Mode-change quiesce polling chunk (see ctrl/mode_change.hpp).
  sim::Cycle quiesce_chunk = 64;
  /// Session-completion polling chunk and per-session wait budget.
  sim::Cycle completion_chunk = 256;
  sim::Cycle max_session_wait = 1 << 22;

  /// Stepper runs evaluated concurrently; never changes the results.
  int jobs = 1;
  /// Optional observability, attached to the wake-list run only (the two
  /// reference runs stay bare so their cost is the simulation itself).
  obs::MetricsRegistry* metrics = nullptr;
  sim::TraceLog* trace = nullptr;
};

/// One per-event control-plane decision record.
struct ChurnDecision {
  std::int32_t event_index = 0;
  /// "join" | "leave" | "leave_skipped" (departure of a rejected session).
  std::string kind;
  std::int32_t session = 0;
  std::int32_t template_id = 0;
  bool accepted = false;
  bool cache_hit = false;
  std::string reason;
  std::int64_t eta = 0;
  ctrl::Time gamma = 0;
  std::int64_t analysis_work = 0;
  /// Whole-transition reconfiguration cost (quiesce + program + R_s); 0 for
  /// rejected joins and skipped leaves.
  sim::Cycle reconfig_cycles = 0;
};

/// Outcome of one full trace replay under one stepper.
struct ChurnRunResult {
  sim::StepperKind stepper = sim::StepperKind::kWakeList;
  std::vector<ChurnDecision> decisions;
  sim::Cycle cycles_run = 0;
  std::uint64_t digest = 0;          // final System::state_digest()
  std::uint64_t audio_checksum = 0;  // FNV over every session's output
  std::int64_t samples_delivered = 0;
  std::int64_t source_drops = 0;
  std::int64_t sink_underruns = 0;
  std::int64_t deadline_misses = 0;  // drops + underruns, admitted sessions
  std::int64_t mode_changes = 0;
  sim::Cycle reconfig_cycles = 0;
  std::int64_t cache_lookups = 0;
  std::int64_t cache_hits = 0;
  std::int64_t accepts = 0;
  std::int64_t rejects = 0;
  std::int64_t analysis_work = 0;
};

struct ChurnResult {
  /// One run per stepper: dense, global-horizon, wake-list (fixed order).
  std::vector<ChurnRunResult> runs;
  /// All runs produced identical decisions, digests and checksums.
  bool equivalent = false;
};

/// A configuration sized for ctest (the E14 default).
[[nodiscard]] ChurnConfig small_churn_config();

/// Replay the configured trace under one stepper.
[[nodiscard]] ChurnRunResult run_admission_churn(const ChurnConfig& cfg,
                                                 sim::StepperKind stepper);

/// Replay under all three steppers (jobs-parallel) and cross-check.
[[nodiscard]] ChurnResult run_churn_campaign(const ChurnConfig& cfg);

/// Lintable declaration of the churn configuration: the chain spec with the
/// join templates as declared streams plus the control-plane section rules
/// C02/G03 gate on (wired through lint::startup_gate by the bench binary).
[[nodiscard]] lint::LintInput churn_lint_input(const ChurnConfig& cfg);

/// The BENCH_admission.json document (schema: common/bench_schema.hpp).
/// Deterministic for a given (config, result) pair: no timing fields.
[[nodiscard]] json::Value admission_bench_doc(const ChurnConfig& cfg,
                                              const ChurnResult& res);

}  // namespace acc::app
