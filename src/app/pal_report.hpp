// RunReport assembly for the PAL stereo decoder demonstrator: joins the
// per-stream maxima observed in a gateway trace (sharing::observe_streams)
// against the analytic bounds implied by the run's PalSimConfig, and embeds
// the metrics snapshot and real-time verdict. The resulting document
// satisfies common/bench_schema.hpp::validate_run_report and is
// byte-reproducible for a fixed configuration (golden-diffed in CI).
#pragma once

#include <string>

#include "app/pal_system.hpp"
#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace acc::app {

/// Human-readable stepper name as pinned in the report schema.
[[nodiscard]] const char* stepper_name(sim::StepperKind kind);

/// Build the RunReport document for one run_pal_decoder invocation.
/// `registry` must be the registry the run was wired to (cfg.metrics);
/// `trace` the run's gateway trace, or null (streams then report observed
/// = -1 against their bounds — nothing to join).
[[nodiscard]] json::Value pal_run_report(const PalSimConfig& cfg,
                                         const PalSimResult& res,
                                         const obs::MetricsRegistry& registry,
                                         const sim::TraceLog* trace);

/// pal_run_report rendered as pretty-printed JSON with a trailing newline
/// (the exact bytes the golden diff pins).
[[nodiscard]] std::string pal_run_report_json(
    const PalSimConfig& cfg, const PalSimResult& res,
    const obs::MetricsRegistry& registry, const sim::TraceLog* trace);

}  // namespace acc::app
