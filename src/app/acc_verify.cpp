// acc-verify — exhaustive bounded model checker for shared-accelerator
// configurations.
//
//   usage: acc-verify [options] config.json [more-configs.json...]
//
// Lints each configuration with the full acc-lint rule set, then builds a
// small cycle-exact verification model of the gateway-managed chain and
// exhaustively explores every reachable state under all environment
// interleavings (feed / drain / advance), bounded by the config's "verify"
// depth/state budgets, checking the temporal-safety rules V01-V05 — ending
// with the wake-soundness audit. A violation comes with a deterministically
// replayable counterexample. See docs/static_analysis.md.
//
// Exit status: 0 = every config is clean (within its declared budgets),
//              1 = usage error, unreadable file or invalid JSON syntax,
//              2 = at least one config has error-tier findings.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "verify/verify.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: acc-verify [options] config.json [more-configs.json...]\n"
        "\n"
        "options:\n"
        "  --json         emit the acc-lint-v1 JSON document (plus a\n"
        "                 \"verify\" section) instead of text (one config)\n"
        "  --rules        print the rule catalog and exit\n"
        "  --allow RULE   suppress a rule by ID or name (repeatable)\n"
        "  --depth N      override the exploration depth budget\n"
        "  --states N     override the distinct-state budget\n"
        "  --max-advance N  override the cycles one 'run' action may use\n"
        "  --jobs N       frontier-expansion workers (output is identical\n"
        "                 for every N)\n"
        "  --quiet        print nothing for clean configs\n"
        "  -h, --help     this message\n";
}

void print_rules(std::ostream& os) {
  for (const acc::lint::RuleInfo& r : acc::lint::kRules) {
    os << r.id << "  " << acc::lint::severity_name(r.severity) << "  "
       << r.name << "\n      " << r.summary << "\n";
  }
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool parse_int_arg(int argc, char** argv, int& i, const char* flag,
                   std::int64_t& out) {
  if (i + 1 >= argc) {
    std::cerr << "acc-verify: " << flag << " needs a value\n";
    return false;
  }
  out = std::strtoll(argv[++i], nullptr, 10);
  if (out <= 0) {
    std::cerr << "acc-verify: " << flag << " needs a positive integer\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acc;

  bool json_out = false;
  bool quiet = false;
  verify::VerifyOptions vopts;
  lint::LintOptions lopts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_out = true;
    } else if (arg == "--rules") {
      print_rules(std::cout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--allow") {
      if (i + 1 >= argc) {
        std::cerr << "acc-verify: --allow needs a rule ID\n";
        return 1;
      }
      // Validated by the library (an unknown rule becomes a C01 error in
      // the report itself), so --json consumers see the bad waiver too.
      lopts.suppress.emplace_back(argv[++i]);
    } else if (arg == "--depth") {
      if (!parse_int_arg(argc, argv, i, "--depth", vopts.depth)) return 1;
    } else if (arg == "--states") {
      if (!parse_int_arg(argc, argv, i, "--states", vopts.states)) return 1;
    } else if (arg == "--max-advance") {
      if (!parse_int_arg(argc, argv, i, "--max-advance", vopts.max_advance))
        return 1;
    } else if (arg == "--jobs") {
      std::int64_t jobs = 0;
      if (!parse_int_arg(argc, argv, i, "--jobs", jobs)) return 1;
      vopts.jobs = static_cast<int>(jobs);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "acc-verify: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    print_usage(std::cerr);
    return 1;
  }
  if (json_out && paths.size() != 1) {
    std::cerr << "acc-verify: --json takes exactly one config\n";
    return 1;
  }

  bool any_errors = false;
  for (const std::string& path : paths) {
    std::ifstream f(path);
    if (!f) {
      std::cerr << "acc-verify: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::optional<json::Value> doc = json::parse(buf.str());
    if (!doc.has_value()) {
      std::cerr << "acc-verify: " << path << ": invalid JSON\n";
      return 1;
    }
    const std::string name = basename_of(path);
    const verify::VerifyResult res =
        verify::verify_config_json(*doc, name, vopts, lopts);
    if (json_out) {
      json::Value root = res.report.to_json();
      json::Array cex;
      for (const verify::Action& a : res.counterexample)
        cex.emplace_back(verify::action_name(a));
      json::Object vsec;
      vsec["explored"] = res.explored;
      vsec["states_explored"] = res.states_explored;
      vsec["depth_reached"] = res.depth_reached;
      vsec["truncated"] = res.truncated;
      vsec["counterexample"] = json::Value(std::move(cex));
      root.as_object()["verify"] = json::Value(std::move(vsec));
      std::cout << root.pretty() << "\n";
    } else {
      if (!quiet || !res.report.clean()) {
        std::cout << res.report.to_text();
        if (res.explored && res.report.clean()) {
          std::cout << name << ": explored " << res.states_explored
                    << " states to depth " << res.depth_reached
                    << (res.truncated ? " (budget-truncated)" : "") << "\n";
        }
      }
      if (!res.report.clean()) {
        const std::string cex =
            verify::render_counterexample(*doc, name, res, vopts);
        if (!cex.empty()) std::cout << cex;
      }
    }
    any_errors |= !res.report.clean();
  }
  return any_errors ? 2 : 0;
}
