#include "app/admission_churn.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "app/pal_report.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ctrl/mode_change.hpp"
#include "sim/chain_builder.hpp"
#include "sim/proc_tile.hpp"

namespace acc::app {

namespace {

// Functional kernels for the two templates. Pass models a unit-rate stage
// (filtering that keeps the sample rate); Decimate models the template's
// down-sampler, whose phase counter is exactly the per-context state the
// configuration bus moves on every context switch.
class Pass final : public accel::StreamKernel {
 public:
  void push(CQ16 in, std::vector<CQ16>& out) override { out.push_back(in); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {};
  }
  void restore_state(std::span<const std::int32_t> state) override {
    ACC_EXPECTS(state.empty());
  }
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "churn.pass"; }
  [[nodiscard]] std::unique_ptr<accel::StreamKernel> clone_fresh()
      const override {
    return std::make_unique<Pass>();
  }
};

class Decimate final : public accel::StreamKernel {
 public:
  explicit Decimate(std::int64_t k) : k_(k) { ACC_EXPECTS(k >= 1); }
  void push(CQ16 in, std::vector<CQ16>& out) override {
    if (++n_ == k_) {
      n_ = 0;
      out.push_back(in);
    }
  }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {static_cast<std::int32_t>(n_)};
  }
  void restore_state(std::span<const std::int32_t> state) override {
    ACC_EXPECTS(state.size() == 1);
    n_ = state[0];
  }
  void reset() override { n_ = 0; }
  [[nodiscard]] std::size_t state_words() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "churn.decim"; }
  [[nodiscard]] std::unique_ptr<accel::StreamKernel> clone_fresh()
      const override {
    return std::make_unique<Decimate>(k_);
  }

 private:
  std::int64_t k_;
  std::int64_t n_ = 0;
};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// Session-scoped DAC model: consumes `expected` output samples on a fixed
/// grid (one per `period` after `prefill` samples are visible), counts one
/// underrun per missed grid slot, folds every delivered sample into an FNV
/// checksum, and PARKS once the session's output is fully delivered — a
/// departed session must not keep "underrunning" while it waits for its
/// leave event. Unlike sim::SinkTile, the deadline window is exactly the
/// session lifetime.
class SessionSink final : public sim::Component {
 public:
  SessionSink(std::string name, sim::CFifo& in, sim::Cycle period,
              std::int64_t expected, std::int64_t prefill)
      : name_(std::move(name)),
        in_(in),
        period_(period),
        expected_(expected),
        prefill_(std::min(prefill, expected)) {
    ACC_EXPECTS(period >= 1);
    ACC_EXPECTS(expected >= 1);
    ACC_EXPECTS(prefill >= 1);
    in_.add_push_watcher(this);
  }

  void tick(sim::Cycle now) override {
    if (done()) return;
    if (!started_) {
      if (in_.when_fill_visible(prefill_, now) <= now) {
        started_ = true;
        next_due_ = now;
      } else {
        return;
      }
    }
    if (now < next_due_) return;
    if (in_.can_pop(now)) {
      checksum_ = fnv_mix(checksum_, in_.pop(now));
      ++received_;
    } else {
      ++underruns_;  // DAC starved inside the session window
    }
    next_due_ += period_;
  }

  [[nodiscard]] sim::Cycle next_event(sim::Cycle now) const override {
    if (done()) return sim::kNeverCycle;
    if (!started_) {
      const sim::Cycle h = in_.when_fill_visible(prefill_, now);
      return h == sim::kNeverCycle ? sim::kNeverCycle : std::max(h, now + 1);
    }
    return std::max(next_due_, now + 1);
  }

  /// started_/next_due_/received_ drive every future action (received_
  /// gates done()); underruns_ and the checksum are lifetime data.
  void snapshot_state(sim::StateHasher& h) const override {
    h.mix(started_);
    h.mix_cycle(next_due_);
    h.mix(received_);
  }

  [[nodiscard]] bool done() const { return received_ >= expected_; }
  [[nodiscard]] std::int64_t received() const { return received_; }
  [[nodiscard]] std::int64_t underruns() const { return underruns_; }
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

 private:
  std::string name_;
  sim::CFifo& in_;
  sim::Cycle period_;
  std::int64_t expected_;
  std::int64_t prefill_;
  bool started_ = false;
  sim::Cycle next_due_ = 0;
  std::int64_t received_ = 0;
  std::int64_t underruns_ = 0;
  std::uint64_t checksum_ = kFnvOffset;
};

struct Session {
  std::int32_t id = 0;
  std::int32_t template_id = 0;
  bool accepted = false;
  bool departed = false;
  ctrl::StreamRequest request;  // carries the deployed eta once admitted
  sim::SourceTile* source = nullptr;
  SessionSink* sink = nullptr;
};

/// Per-session input: derived from (workload seed, session id) only, so all
/// three stepper runs feed bit-identical samples.
std::vector<sim::Flit> session_samples(std::uint64_t seed, std::int32_t id,
                                       std::int64_t count) {
  SplitMix64 rng(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1)));
  std::vector<sim::Flit> out(static_cast<std::size_t>(count));
  for (sim::Flit& f : out) f = rng.next();
  return out;
}

ctrl::StreamRequest template_request(const ChurnTemplate& t,
                                     std::int32_t session) {
  ctrl::StreamRequest r;
  r.name = t.name + "#" + std::to_string(session);
  r.mu = Rational(1, t.period);
  r.reconfig = t.reconfig;
  r.decimation = t.decimation;
  return r;
}

void validate_config(const ChurnConfig& cfg) {
  ACC_EXPECTS_MSG(static_cast<std::int32_t>(cfg.templates.size()) >=
                      cfg.workload.num_templates,
                  "fewer templates than the workload draws from");
  ACC_EXPECTS(!cfg.accel_cycles.empty());
  ACC_EXPECTS(cfg.blocks_per_session >= 1 && cfg.prefill_blocks >= 1);
  ACC_EXPECTS(cfg.fifo_slack >= 1);
  ACC_EXPECTS(cfg.event_gap >= 1 && cfg.completion_chunk >= 1);
  for (const ChurnTemplate& t : cfg.templates) {
    ACC_EXPECTS(t.period >= 1 && t.decimation >= 1 && t.reconfig >= 0);
  }
}

}  // namespace

ChurnConfig small_churn_config() { return ChurnConfig{}; }

ChurnRunResult run_admission_churn(const ChurnConfig& cfg,
                                   sim::StepperKind stepper) {
  validate_config(cfg);
  const bool observed = stepper == sim::StepperKind::kWakeList;
  obs::MetricsRegistry* metrics = observed ? cfg.metrics : nullptr;
  sim::TraceLog* trace = observed ? cfg.trace : nullptr;

  const auto n_accels = static_cast<std::int32_t>(cfg.accel_cycles.size());
  sim::System sys(n_accels + 2);
  sim::ChainConfig cc;
  cc.name = "churn";
  cc.base_node = 0;
  cc.accel_cycles = cfg.accel_cycles;
  cc.epsilon = cfg.epsilon;
  cc.delta = cfg.delta;
  cc.ni_capacity = cfg.ni_capacity;
  cc.exit_notify_lag = cfg.exit_notify_lag;
  cc.trace = trace;
  cc.metrics = metrics;
  sim::GatewayChain chain = sim::build_gateway_chain(sys, cc);

  ctrl::AdmissionConfig ac;
  ac.chain.accel_cycles_per_sample.assign(cfg.accel_cycles.begin(),
                                          cfg.accel_cycles.end());
  ac.chain.entry_cycles_per_sample = cfg.epsilon;
  ac.chain.exit_cycles_per_sample = cfg.delta;
  ac.chain.ni_capacity = cfg.ni_capacity;
  ac.eta_max = cfg.eta_max;
  ac.eta_align = cfg.eta_align;
  ctrl::AdmissionController admission(ac);
  admission.set_metrics(metrics);

  ctrl::ModeChangeConfig mc;
  mc.sys = &sys;
  mc.entry = chain.entry;
  mc.accels = chain.accels;
  mc.stepper = stepper;
  mc.quiesce_chunk = cfg.quiesce_chunk;
  mc.trace = trace;
  mc.metrics = metrics;
  ctrl::ModeChangeProtocol protocol(mc);

  ChurnRunResult res;
  res.stepper = stepper;

  std::vector<Session> sessions;  // indexed by session id (join order)

  const auto active_requests = [&sessions] {
    std::vector<ctrl::StreamRequest> active;
    for (const Session& s : sessions) {
      if (s.accepted && !s.departed) active.push_back(s.request);
    }
    return active;
  };

  const auto wait_for_completion = [&](Session& s) {
    const sim::Cycle start = sys.now();
    while (!(s.source->exhausted() && s.sink->done())) {
      ACC_CHECK_MSG(sys.now() - start <= cfg.max_session_wait,
                    "session failed to complete within its wait budget");
      sys.run_with(stepper, cfg.completion_chunk);
    }
  };

  const auto depart = [&](Session& s, ChurnDecision& rec) {
    // A departure is graceful: the session finishes its scripted content,
    // then the mode-change protocol unplugs it at a round boundary.
    wait_for_completion(s);
    rec.reconfig_cycles = protocol.leave(s.id);
    s.departed = true;
    ++res.mode_changes;
    res.reconfig_cycles += rec.reconfig_cycles;
  };

  const std::vector<ctrl::SessionEvent> events =
      ctrl::generate_session_trace(cfg.workload);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ctrl::SessionEvent& e = events[i];
    ChurnDecision rec;
    rec.event_index = static_cast<std::int32_t>(i);
    rec.session = e.session;
    if (e.kind == ctrl::SessionEvent::Kind::kJoin) {
      ACC_CHECK(e.session == static_cast<std::int32_t>(sessions.size()));
      const ChurnTemplate& t =
          cfg.templates[static_cast<std::size_t>(e.template_id)];
      rec.kind = "join";
      rec.template_id = e.template_id;
      Session s;
      s.id = e.session;
      s.template_id = e.template_id;
      s.request = template_request(t, e.session);

      const ctrl::AdmissionDecision d =
          admission.admit(active_requests(), s.request);
      rec.accepted = d.accepted;
      rec.cache_hit = d.cache_hit;
      rec.reason = d.reason;
      rec.eta = d.eta;
      rec.gamma = d.gamma;
      rec.analysis_work = d.analysis_work;

      if (d.accepted) {
        s.accepted = true;
        s.request.eta = d.eta;
        const std::int64_t opb = d.eta / t.decimation;
        const std::string base = "s" + std::to_string(e.session);
        sim::CFifo& in =
            sys.add_fifo(base + ".in", d.eta * cfg.fifo_slack);
        sim::CFifo& out =
            sys.add_fifo(base + ".out", opb * cfg.fifo_slack);
        sim::StreamRoute route;
        route.id = e.session;
        route.name = s.request.name;
        route.eta = d.eta;
        route.out_per_block = opb;
        route.input = &in;
        route.output = &out;
        route.reconfig = t.reconfig;
        std::vector<std::unique_ptr<accel::StreamKernel>> kernels;
        for (std::size_t k = 0; k < chain.accels.size(); ++k) {
          if (k + 1 == chain.accels.size() && t.decimation > 1) {
            kernels.push_back(std::make_unique<Decimate>(t.decimation));
          } else {
            kernels.push_back(std::make_unique<Pass>());
          }
        }
        rec.reconfig_cycles = protocol.join(route, std::move(kernels));
        ++res.mode_changes;
        res.reconfig_cycles += rec.reconfig_cycles;
        // The session's tiles start AFTER the transition: the front end
        // begins sampling once its stream is programmed.
        const std::int64_t total = cfg.blocks_per_session * d.eta;
        s.source = &sys.add<sim::SourceTile>(
            base + ".src", in,
            session_samples(cfg.workload.seed, e.session, total), t.period,
            sys.now() + t.period);
        s.sink = &sys.add<SessionSink>(base + ".snk", out,
                                       t.period * t.decimation,
                                       cfg.blocks_per_session * opb,
                                       cfg.prefill_blocks * opb);
      }
      sessions.push_back(std::move(s));
    } else {
      Session& s = sessions[static_cast<std::size_t>(e.session)];
      rec.template_id = s.template_id;
      if (!s.accepted) {
        rec.kind = "leave_skipped";  // the join was rejected; nothing runs
      } else {
        rec.kind = "leave";
        depart(s, rec);
      }
    }
    res.decisions.push_back(std::move(rec));
    sys.run_with(stepper, cfg.event_gap);
  }

  // End of trace: every still-active session completes and departs, so the
  // final digest compares a fully quiesced system across steppers.
  for (Session& s : sessions) {
    if (!s.accepted || s.departed) continue;
    ChurnDecision rec;
    rec.event_index = static_cast<std::int32_t>(events.size());
    rec.kind = "leave";
    rec.session = s.id;
    rec.template_id = s.template_id;
    depart(s, rec);
    res.decisions.push_back(std::move(rec));
  }
  protocol.quiesce();

  res.cycles_run = sys.now();
  res.digest = sys.state_digest();
  res.cache_lookups = admission.cache_lookups();
  res.cache_hits = admission.cache_hits();
  res.accepts = admission.accepts();
  res.rejects = admission.rejects();
  std::uint64_t audio = kFnvOffset;
  for (const Session& s : sessions) {
    if (!s.accepted) continue;
    audio = fnv_mix(audio, static_cast<std::uint64_t>(s.id));
    audio = fnv_mix(audio, s.sink->checksum());
    res.samples_delivered += s.sink->received();
    res.source_drops += s.source->dropped();
    res.sink_underruns += s.sink->underruns();
  }
  res.audio_checksum = audio;
  res.deadline_misses = res.source_drops + res.sink_underruns;
  for (const ChurnDecision& d : res.decisions)
    res.analysis_work += d.analysis_work;
  return res;
}

ChurnResult run_churn_campaign(const ChurnConfig& cfg) {
  const sim::StepperKind kinds[] = {sim::StepperKind::kDense,
                                    sim::StepperKind::kGlobalHorizon,
                                    sim::StepperKind::kWakeList};
  ChurnResult res;
  res.runs.resize(3);
  const auto run_one = [&](std::size_t i) {
    res.runs[i] = run_admission_churn(cfg, kinds[i]);
  };
  if (cfg.jobs > 1) {
    ThreadPool pool(static_cast<std::size_t>(cfg.jobs));
    for (std::size_t i = 0; i < 3; ++i)
      pool.submit([&run_one, i](std::size_t) { run_one(i); });
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < 3; ++i) run_one(i);
  }

  res.equivalent = true;
  const ChurnRunResult& ref = res.runs.back();  // wake-list
  for (const ChurnRunResult& r : res.runs) {
    res.equivalent = res.equivalent && r.cycles_run == ref.cycles_run &&
                     r.digest == ref.digest &&
                     r.audio_checksum == ref.audio_checksum &&
                     r.deadline_misses == ref.deadline_misses &&
                     r.decisions.size() == ref.decisions.size();
    if (r.decisions.size() == ref.decisions.size()) {
      for (std::size_t i = 0; i < r.decisions.size(); ++i) {
        const ChurnDecision& a = r.decisions[i];
        const ChurnDecision& b = ref.decisions[i];
        res.equivalent = res.equivalent && a.kind == b.kind &&
                         a.session == b.session && a.accepted == b.accepted &&
                         a.cache_hit == b.cache_hit && a.eta == b.eta &&
                         a.gamma == b.gamma &&
                         a.analysis_work == b.analysis_work &&
                         a.reconfig_cycles == b.reconfig_cycles;
      }
    }
  }
  return res;
}

lint::LintInput churn_lint_input(const ChurnConfig& cfg) {
  lint::LintInput li;
  li.name = "admission-churn";
  sharing::SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample.assign(cfg.accel_cycles.begin(),
                                            cfg.accel_cycles.end());
  spec.chain.entry_cycles_per_sample = cfg.epsilon;
  spec.chain.exit_cycles_per_sample = cfg.delta;
  spec.chain.ni_capacity = cfg.ni_capacity;
  // The templates stand in as the declared stream set: the static gate
  // checks the shapes sessions will instantiate, not one concrete mix.
  for (const ChurnTemplate& t : cfg.templates) {
    spec.streams.push_back({t.name, Rational(1, t.period), t.reconfig});
  }
  li.spec = std::move(spec);

  lint::CtrlDecl ctrl;
  ctrl.eta_max = cfg.eta_max;
  for (std::size_t i = 0; i < cfg.accel_cycles.size(); ++i) {
    // Kind vocabulary: the last chain stage doubles as the decimator.
    ctrl.accel_kinds.push_back(
        i + 1 == cfg.accel_cycles.size() ? "decim" : "pass");
  }
  for (const ChurnTemplate& t : cfg.templates) {
    lint::CtrlJoinDecl j;
    j.name = t.name;
    j.mu = Rational(1, t.period);
    j.reconfig = t.reconfig;
    j.decimation = t.decimation;
    for (std::size_t i = 0; i < cfg.accel_cycles.size(); ++i) {
      j.accel_kinds.push_back(
          i + 1 == cfg.accel_cycles.size() && t.decimation > 1 ? "decim"
                                                               : "pass");
    }
    ctrl.joins.push_back(std::move(j));
  }
  li.ctrl = std::move(ctrl);
  return li;
}

json::Value admission_bench_doc(const ChurnConfig& cfg,
                                const ChurnResult& res) {
  ACC_EXPECTS(res.runs.size() == 3);
  json::Object doc;
  doc["bench"] = "admission_churn";
  doc["seed"] = static_cast<std::int64_t>(cfg.workload.seed);
  doc["events"] = static_cast<std::int64_t>(cfg.workload.events);
  doc["max_concurrent"] =
      static_cast<std::int64_t>(cfg.workload.max_concurrent);
  doc["event_gap"] = cfg.event_gap;
  doc["eta_max"] = cfg.eta_max;
  doc["eta_align"] = cfg.eta_align;
  doc["blocks_per_session"] = cfg.blocks_per_session;

  json::Object chain;
  json::Array accels;
  for (const sim::Cycle c : cfg.accel_cycles) accels.emplace_back(c);
  chain["accelerators"] = std::move(accels);
  chain["entry"] = cfg.epsilon;
  chain["exit"] = cfg.delta;
  chain["ni_capacity"] = cfg.ni_capacity;
  doc["chain"] = std::move(chain);

  json::Array templates;
  for (const ChurnTemplate& t : cfg.templates) {
    json::Object tv;
    tv["name"] = t.name;
    tv["period"] = t.period;
    tv["decimation"] = t.decimation;
    tv["reconfig"] = t.reconfig;
    templates.push_back(std::move(tv));
  }
  doc["templates"] = std::move(templates);

  const ChurnRunResult& ref = res.runs.back();  // wake-list run
  json::Array decisions;
  for (const ChurnDecision& d : ref.decisions) {
    json::Object dv;
    dv["i"] = d.event_index;
    dv["kind"] = d.kind;
    dv["session"] = d.session;
    dv["template"] = d.template_id;
    dv["accepted"] = d.accepted;
    dv["cache_hit"] = d.cache_hit;
    dv["reason"] = d.reason;
    dv["eta"] = d.eta;
    dv["gamma"] = d.gamma;
    dv["analysis_work"] = d.analysis_work;
    dv["reconfig_cycles"] = d.reconfig_cycles;
    decisions.push_back(std::move(dv));
  }
  doc["decisions"] = std::move(decisions);

  json::Array steppers;
  for (const ChurnRunResult& r : res.runs) {
    json::Object rv;
    rv["stepper"] = stepper_name(r.stepper);
    rv["cycles_run"] = r.cycles_run;
    rv["digest"] = std::to_string(r.digest);  // uint64: keep as string
    rv["audio_checksum"] = std::to_string(r.audio_checksum);
    rv["deadline_misses"] = r.deadline_misses;
    steppers.push_back(std::move(rv));
  }
  doc["steppers"] = std::move(steppers);

  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t skipped = 0;
  for (const ChurnDecision& d : ref.decisions) {
    if (d.kind == "join") ++joins;
    if (d.kind == "leave") ++leaves;
    if (d.kind == "leave_skipped") ++skipped;
  }
  json::Object summary;
  summary["joins"] = joins;
  summary["accepted"] = ref.accepts;
  summary["rejected"] = ref.rejects;
  summary["leaves"] = leaves;
  summary["leaves_skipped"] = skipped;
  summary["cache_lookups"] = ref.cache_lookups;
  summary["cache_hits"] = ref.cache_hits;
  summary["analysis_work"] = ref.analysis_work;
  summary["mode_changes"] = ref.mode_changes;
  summary["reconfig_cycles"] = ref.reconfig_cycles;
  summary["samples_delivered"] = ref.samples_delivered;
  summary["source_drops"] = ref.source_drops;
  summary["sink_underruns"] = ref.sink_underruns;
  summary["deadline_misses"] = ref.deadline_misses;
  summary["audio_checksum"] = std::to_string(ref.audio_checksum);
  summary["cycles_run"] = ref.cycles_run;
  doc["summary"] = std::move(summary);
  doc["equivalent"] = res.equivalent;
  return json::Value(std::move(doc));
}

}  // namespace acc::app
