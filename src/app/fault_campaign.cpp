#include "app/fault_campaign.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "sharing/analysis.hpp"
#include "sharing/conformance.hpp"
#include "sim/trace.hpp"

namespace acc::app {

namespace {

/// Per-point injector seed: decorrelated from the campaign seed so point i
/// never shares a fault pattern with point j, independent of --jobs.
std::uint64_t point_seed(std::uint64_t campaign_seed, std::size_t index) {
  return campaign_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
}

double clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

}  // namespace

std::vector<FaultLevel> default_fault_levels() {
  return {
      {"baseline", 0.0, false},
      {"light", 0.25, false},
      {"moderate", 1.0, false},
      {"heavy", 2.0, false},
      {"lossy", 1.0, true},
  };
}

PalSimConfig small_campaign_pal_config() {
  PalSimConfig cfg;
  cfg.input_samples = 4096;
  cfg.input_period = 40;
  cfg.reconfig = 400;
  // Recovery from a lost notification costs ~notify_timeout cycles — far
  // beyond the delay envelope, so "lossy" points surface genuine breaches.
  cfg.notify_timeout = 20000;
  cfg.notify_max_retries = 8;
  cfg.notify_backoff = 0;
  return cfg;
}

void apply_fault_level(sim::FaultInjector& inj, const FaultLevel& level) {
  if (level.intensity <= 0.0 && !level.drop_notifications) return;

  // Magnitudes are fixed; intensity only scales how OFTEN faults fire.
  // worst_case_block_delay depends on magnitudes and spacing alone, so
  // every delay-only level shares the same declared envelope.
  sim::FaultSpec ring;
  ring.probability = clamp01(0.10 * level.intensity);
  ring.max_delay = 6;
  ring.min_spacing = 200;
  inj.configure(sim::FaultSite::kRingLink, ring);

  sim::FaultSpec bus;
  bus.probability = clamp01(0.50 * level.intensity);
  bus.max_delay = 64;
  inj.configure(sim::FaultSite::kConfigBus, bus);

  sim::FaultSpec notify;
  notify.probability = clamp01(0.50 * level.intensity);
  notify.max_delay = 32;
  notify.drop_probability = level.drop_notifications ? 0.4 : 0.0;
  inj.configure(sim::FaultSite::kExitNotify, notify);

  sim::FaultSpec credit;
  credit.probability = clamp01(0.02 * level.intensity);
  credit.max_delay = 4;
  credit.min_spacing = 400;
  inj.configure(sim::FaultSite::kCreditWithhold, credit);
}

FaultCampaignResult run_fault_campaign(const FaultCampaignConfig& cfg) {
  FaultCampaignResult out;
  out.points.resize(cfg.levels.size());

  const auto run_point = [&cfg, &out](std::size_t i) {
    const FaultLevel& level = cfg.levels[i];
    sim::FaultInjector inj(point_seed(cfg.seed, i));
    apply_fault_level(inj, level);
    sim::TraceLog trace(1 << 18);
    obs::MetricsRegistry metrics;

    PalSimConfig pal = cfg.pal;
    pal.fault = &inj;
    pal.trace = &trace;
    pal.metrics = &metrics;
    const PalSimResult sim = run_pal_decoder(pal);

    const sharing::SharedSystemSpec spec = make_system_spec(pal);
    const std::vector<std::int64_t> etas = {sim.eta_stage1, sim.eta_stage1,
                                            sim.eta_stage2, sim.eta_stage2};
    sharing::ConformanceOptions copts;
    copts.slack = cfg.conformance_slack;
    Time tau_max = 0;
    for (std::size_t s = 0; s < spec.num_streams(); ++s)
      tau_max = std::max(tau_max, sharing::tau_hat(spec, s, etas[s]));
    const std::int64_t eta_max =
        *std::max_element(etas.begin(), etas.end());
    copts.fault_slack =
        inj.worst_case_block_delay(tau_max + copts.slack, eta_max);
    const sharing::ConformanceReport rep =
        sharing::check_conformance(spec, etas, trace, copts);

    FaultPointResult& p = out.points[i];
    p.level = level;
    p.seed = inj.seed();
    p.faults_injected = inj.total_injected();
    p.notifications_dropped = inj.total_dropped();
    p.fault_delay_cycles = inj.total_delay_cycles();
    p.fault_slack = copts.fault_slack;
    p.blocks_checked = rep.blocks_checked;
    p.violations = static_cast<std::int64_t>(rep.violations.size());
    p.covered_by_slack = rep.covered_by_slack;
    p.genuine_breaches = rep.genuine_breaches;
    p.max_service_observed = rep.max_service_observed;
    p.max_excess = rep.max_excess;
    p.notify_timeouts = sim.gateway.notify_timeouts;
    p.notify_recoveries = sim.gateway.notify_recoveries;
    p.credit_stalls = sim.gateway.credit_stalls;
    p.source_drops = sim.source_drops;
    p.sink_underruns = sim.sink_underruns;
    p.trace_truncated = trace.truncated();
    p.trace_csv = trace.to_csv();
    p.metrics_snapshot = metrics.snapshot_text();
  };

  if (cfg.jobs > 1) {
    ThreadPool pool(static_cast<std::size_t>(cfg.jobs));
    for (std::size_t i = 0; i < cfg.levels.size(); ++i)
      pool.submit([&run_point, i](std::size_t) { run_point(i); });
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < cfg.levels.size(); ++i) run_point(i);
  }
  return out;
}

json::Value faults_bench_doc(const FaultCampaignConfig& cfg,
                             const FaultCampaignResult& res) {
  json::Object doc;
  doc["bench"] = "faults";
  doc["seed"] = static_cast<std::int64_t>(cfg.seed);
  doc["conformance_slack"] = cfg.conformance_slack;

  json::Object pal;
  pal["input_samples"] = static_cast<std::int64_t>(cfg.pal.input_samples);
  pal["input_period"] = cfg.pal.input_period;
  pal["reconfig"] = cfg.pal.reconfig;
  pal["notify_timeout"] = cfg.pal.notify_timeout;
  doc["pal"] = std::move(pal);

  json::Array points;
  std::int64_t total_injected = 0;
  std::int64_t total_covered = 0;
  std::int64_t total_genuine = 0;
  for (const FaultPointResult& p : res.points) {
    json::Object o;
    o["label"] = p.level.label;
    o["intensity"] = p.level.intensity;
    o["drop_notifications"] = p.level.drop_notifications;
    o["seed"] = static_cast<std::int64_t>(p.seed);
    o["faults_injected"] = p.faults_injected;
    o["notifications_dropped"] = p.notifications_dropped;
    o["fault_delay_cycles"] = p.fault_delay_cycles;
    o["fault_slack"] = p.fault_slack;
    o["blocks_checked"] = p.blocks_checked;
    o["violations"] = p.violations;
    o["covered_by_slack"] = p.covered_by_slack;
    o["genuine_breaches"] = p.genuine_breaches;
    o["max_service_observed"] = p.max_service_observed;
    o["max_excess"] = p.max_excess;
    o["notify_timeouts"] = p.notify_timeouts;
    o["notify_recoveries"] = p.notify_recoveries;
    o["credit_stalls"] = p.credit_stalls;
    o["source_drops"] = p.source_drops;
    o["sink_underruns"] = p.sink_underruns;
    o["trace_truncated"] = p.trace_truncated;
    points.emplace_back(std::move(o));
    total_injected += p.faults_injected;
    total_covered += p.covered_by_slack;
    total_genuine += p.genuine_breaches;
  }
  doc["points"] = std::move(points);

  json::Object summary;
  summary["faults_injected"] = total_injected;
  summary["covered_by_slack"] = total_covered;
  summary["genuine_breaches"] = total_genuine;
  doc["summary"] = std::move(summary);
  return json::Value(std::move(doc));
}

}  // namespace acc::app
