// Fault-injection campaign on the PAL stereo decoder: run the shared-chain
// demonstrator at increasing fault intensity, check the gateway trace for
// conformance to the analysis bounds, and classify every violation as
// covered-by-slack (the injector's declared worst-case per-block delay
// absorbs it) or a genuine bound breach.
//
// The campaign is deterministic: every point derives its FaultInjector seed
// from (campaign seed, point index), runs single-threaded inside the
// simulator, and the resulting BENCH_faults.json carries no wall-clock
// fields — the same seed yields a bit-identical document for any --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/pal_system.hpp"
#include "common/json.hpp"
#include "sim/fault.hpp"

namespace acc::app {

/// One intensity level of the campaign.
struct FaultLevel {
  std::string label;
  /// Scales the per-site fault probabilities (0 = fault-free). The per-hit
  /// delay magnitudes stay fixed, so every delay-only level operates within
  /// the envelope FaultInjector::worst_case_block_delay declares.
  double intensity = 0.0;
  /// Additionally drop exit-gateway idle notifications. Recovery then
  /// relies on the entry gateway's retry policy, whose timeout is far
  /// beyond the declared envelope — these points are expected to produce
  /// genuine bound breaches.
  bool drop_notifications = false;
};

/// baseline (0), light (0.25), moderate (1.0), heavy (2.0) — all within
/// the declared envelope — plus "lossy": moderate intensity with dropped
/// notifications, beyond the envelope.
[[nodiscard]] std::vector<FaultLevel> default_fault_levels();

/// A PAL configuration small enough for ctest (seconds, not minutes), with
/// the notification retry policy armed.
[[nodiscard]] PalSimConfig small_campaign_pal_config();

/// Per-level outcome: injector totals, real-time verdict and the
/// slack-classified conformance result.
struct FaultPointResult {
  FaultLevel level;
  std::uint64_t seed = 0;

  // Injector totals.
  std::int64_t faults_injected = 0;
  std::int64_t notifications_dropped = 0;
  sim::Cycle fault_delay_cycles = 0;
  /// Declared per-block fault envelope fed to the conformance checker.
  sim::Cycle fault_slack = 0;

  // Conformance classification.
  std::int64_t blocks_checked = 0;
  std::int64_t violations = 0;
  std::int64_t covered_by_slack = 0;
  std::int64_t genuine_breaches = 0;
  sim::Cycle max_service_observed = 0;
  sim::Cycle max_excess = 0;

  // Degradation / recovery counters and real-time verdict.
  std::int64_t notify_timeouts = 0;
  std::int64_t notify_recoveries = 0;
  std::int64_t credit_stalls = 0;
  std::int64_t source_drops = 0;
  std::int64_t sink_underruns = 0;

  bool trace_truncated = false;
  /// Full gateway trace (CSV) — the determinism tests compare it verbatim.
  std::string trace_csv;
  /// Full metrics snapshot of the point's run (obs snapshot_text format).
  /// Each point owns a private registry, so the snapshot is independent of
  /// --jobs and compared verbatim by the determinism tests.
  std::string metrics_snapshot;
};

struct FaultCampaignConfig {
  PalSimConfig pal = small_campaign_pal_config();
  std::vector<FaultLevel> levels = default_fault_levels();
  std::uint64_t seed = 0x5EED;
  /// Campaign points evaluated concurrently; never changes the results.
  int jobs = 1;
  sim::Cycle conformance_slack = 16;
};

struct FaultCampaignResult {
  std::vector<FaultPointResult> points;
};

/// Configure `inj` for one level (site probabilities scaled by intensity).
void apply_fault_level(sim::FaultInjector& inj, const FaultLevel& level);

[[nodiscard]] FaultCampaignResult run_fault_campaign(
    const FaultCampaignConfig& cfg);

/// The BENCH_faults.json document (schema: common/bench_schema.hpp).
/// Deterministic for a given (config, result) pair: no timing fields.
[[nodiscard]] json::Value faults_bench_doc(const FaultCampaignConfig& cfg,
                                           const FaultCampaignResult& res);

}  // namespace acc::app
