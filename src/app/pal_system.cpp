#include "app/pal_system.hpp"

#include <algorithm>
#include <cmath>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "common/check.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace acc::app {

namespace {

std::int64_t round_up_to(std::int64_t v, std::int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

/// Solve Algorithm 1, then round blocks up to the decimation factor so each
/// block yields a fixed output count (the exit-gateway must know how many
/// samples to expect). Rounding up grows gamma, so re-verify and iterate.
void solve_blocks(const PalSimConfig& cfg, const sharing::SharedSystemSpec& spec,
                  std::int64_t* eta1, std::int64_t* eta2) {
  if (cfg.eta_stage1 > 0 && cfg.eta_stage2 > 0) {
    ACC_EXPECTS_MSG(cfg.eta_stage1 % cfg.decimation == 0 &&
                        cfg.eta_stage2 % cfg.decimation == 0,
                    "explicit block sizes must be decimation-aligned");
    *eta1 = cfg.eta_stage1;
    *eta2 = cfg.eta_stage2;
    return;
  }
  const sharing::BlockSizeResult base = sharing::solve_block_sizes_fixpoint(spec);
  ACC_EXPECTS_MSG(base.feasible,
                  "system infeasible: utilization >= 1 (raise input_period)");
  std::vector<std::int64_t> etas = base.eta;
  for (std::int64_t& e : etas) e = round_up_to(e, cfg.decimation);
  for (int guard = 0; guard < 1000 && !sharing::throughput_met(spec, etas);
       ++guard) {
    const Time gamma = sharing::gamma_hat(spec, etas);
    for (std::size_t s = 0; s < etas.size(); ++s) {
      const std::int64_t need = (spec.streams[s].mu * Rational(gamma)).ceil();
      etas[s] = std::max(etas[s], round_up_to(need, cfg.decimation));
    }
  }
  ACC_CHECK(sharing::throughput_met(spec, etas));
  *eta1 = etas[0];
  *eta2 = etas[2];
}

}  // namespace

/// Synthesize the broadcast and quantize it to flits (shared by both the
/// shared-chain and the dedicated-baseline assemblies).
std::vector<sim::Flit> synthesize_pal_input(const PalSimConfig& cfg) {
  radio::PalStereoConfig pal;
  pal.sample_rate = cfg.sample_rate;
  pal.carrier1_hz = cfg.carrier1_hz;
  pal.carrier2_hz = cfg.carrier2_hz;
  pal.deviation_hz = cfg.deviation_hz;
  const radio::Tone tl{cfg.tone_left_hz, cfg.tone_amplitude};
  const radio::Tone tr{cfg.tone_right_hz, cfg.tone_amplitude};
  const radio::StereoSource src = radio::render_stereo_tones(
      {&tl, 1}, {&tr, 1}, cfg.sample_rate, cfg.input_samples);
  const std::vector<radio::cplx> baseband =
      radio::synthesize_pal_stereo(pal, src);
  std::vector<sim::Flit> rf;
  rf.reserve(baseband.size());
  for (const radio::cplx& s : baseband) {
    rf.push_back(sim::pack_sample(CQ16{Q16::from_double(s.real()),
                                       Q16::from_double(s.imag())}));
  }
  return rf;
}

lint::LintInput make_lint_input(const PalSimConfig& cfg) {
  lint::LintInput in;
  in.name = "pal-decoder";
  in.spec = make_system_spec(cfg);

  // Resolve block sizes where possible; an infeasible spec leaves etas
  // empty and the linter reports M09 from the utilization test instead.
  std::int64_t eta1 = 0;
  std::int64_t eta2 = 0;
  try {
    solve_blocks(cfg, *in.spec, &eta1, &eta2);
  } catch (const std::exception&) {
    eta1 = eta2 = 0;
  }
  if (eta1 > 0 && eta2 > 0) {
    in.etas = {eta1, eta1, eta2, eta2};
    const std::int64_t burst = eta2 / cfg.decimation;
    in.fifos = {{"in.ch1", cfg.fifo_slack * eta1},
                {"in.ch2", cfg.fifo_slack * eta1},
                {"mid.ch1", cfg.fifo_slack * eta2},
                {"mid.ch2", cfg.fifo_slack * eta2},
                {"audio.ch1", cfg.fifo_slack * burst + 64},
                {"audio.ch2", cfg.fifo_slack * burst + 64}};
    in.stream_fifos = {"in.ch1", "in.ch2", "mid.ch1", "mid.ch2"};
    // Each stage-1 block leaves eta1/decimation samples in its mid FIFO;
    // each stage-2 block leaves eta2/decimation samples in its audio FIFO.
    in.block_out = {eta1 / cfg.decimation, eta1 / cfg.decimation, burst,
                    burst};
    lint::GatewayDecl entry;
    entry.name = "entry";
    entry.is_entry = true;
    entry.chain = "cordic+fir";
    entry.streams = {0, 1, 2, 3};
    entry.consumer_fifos = {"mid.ch1", "mid.ch2", "audio.ch1", "audio.ch2"};
    lint::GatewayDecl exit;
    exit.name = "exit";
    exit.is_entry = false;
    exit.chain = "cordic+fir";
    in.gateways = {std::move(entry), std::move(exit)};
  }

  if (cfg.fault != nullptr) in.faults = lint::faults_from_injector(*cfg.fault);

  lint::DeterminismDecl det;
  det.event_stepper = cfg.stepper != sim::StepperKind::kDense;
  det.rng_seeded = true;  // the broadcast synthesis is closed-form, no RNG
  in.determinism = det;
  return in;
}

sharing::SharedSystemSpec make_system_spec(const PalSimConfig& cfg) {
  sharing::SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {cfg.accel_cycles, cfg.accel_cycles};
  spec.chain.entry_cycles_per_sample = cfg.epsilon;
  spec.chain.exit_cycles_per_sample = cfg.delta;
  spec.chain.ni_capacity = cfg.ni_capacity;
  const Rational mu_fast(1, cfg.input_period);
  const Rational mu_slow(1, cfg.input_period * cfg.decimation);
  spec.streams = {
      {"ch1.mix+lpf", mu_fast, cfg.reconfig},
      {"ch2.mix+lpf", mu_fast, cfg.reconfig},
      {"ch1.demod+lpf", mu_slow, cfg.reconfig},
      {"ch2.demod+lpf", mu_slow, cfg.reconfig},
  };
  return spec;
}

PalSimResult run_pal_decoder(const PalSimConfig& cfg) {
  if (cfg.lint) {
    const lint::LintReport rep = lint::lint_input(make_lint_input(cfg));
    ACC_EXPECTS_MSG(rep.clean(),
                    "configuration rejected by acc-lint:\n" + rep.to_text());
  }
  PalSimResult res;
  const sharing::SharedSystemSpec spec = make_system_spec(cfg);
  res.utilization = sharing::utilization(spec);

  std::int64_t eta1 = 0;
  std::int64_t eta2 = 0;
  solve_blocks(cfg, spec, &eta1, &eta2);
  res.eta_stage1 = eta1;
  res.eta_stage2 = eta2;
  res.gamma = sharing::gamma_hat(spec, {eta1, eta1, eta2, eta2});

  // ---- Synthesize the broadcast and quantize to fixed point. ----
  std::vector<sim::Flit> rf_local;
  if (cfg.prebuilt_input == nullptr) {
    rf_local = synthesize_pal_input(cfg);
  } else {
    ACC_EXPECTS_MSG(cfg.prebuilt_input->size() == cfg.input_samples,
                    "prebuilt_input size does not match input_samples");
  }
  const std::vector<sim::Flit>& rf =
      cfg.prebuilt_input != nullptr ? *cfg.prebuilt_input : rf_local;

  // ---- Build the MPSoC. Nodes: 0 entry, 1 CORDIC, 2 FIR, 3 exit. ----
  sim::System sys(4);
  constexpr std::int32_t kEntry = 0;
  constexpr std::int32_t kCordic = 1;
  constexpr std::int32_t kFir = 2;
  constexpr std::int32_t kExit = 3;
  constexpr std::uint32_t kTagToCordic = 1;
  constexpr std::uint32_t kTagToFir = 2;
  constexpr std::uint32_t kTagToExit = 3;

  const std::int64_t burst = eta2 / cfg.decimation;  // audio samples/round
  sim::CFifo& in1 = sys.add_fifo("in.ch1", cfg.fifo_slack * eta1);
  sim::CFifo& in2 = sys.add_fifo("in.ch2", cfg.fifo_slack * eta1);
  sim::CFifo& mid1 = sys.add_fifo("mid.ch1", cfg.fifo_slack * eta2);
  sim::CFifo& mid2 = sys.add_fifo("mid.ch2", cfg.fifo_slack * eta2);
  sim::CFifo& audio1 = sys.add_fifo("audio.ch1", cfg.fifo_slack * burst + 64);
  sim::CFifo& audio2 = sys.add_fifo("audio.ch2", cfg.fifo_slack * burst + 64);
  sim::CFifo& out_l = sys.add_fifo("dac.left", cfg.fifo_slack * burst + 64);
  sim::CFifo& out_r = sys.add_fifo("dac.right", cfg.fifo_slack * burst + 64);

  // Accelerator tiles with per-stream contexts.
  auto& cordic = sys.add<sim::AcceleratorTile>("cordic", sys.ring(), kCordic,
                                               cfg.accel_cycles,
                                               cfg.ni_capacity);
  auto& fir = sys.add<sim::AcceleratorTile>("fir", sys.ring(), kFir,
                                            cfg.accel_cycles, cfg.ni_capacity);
  const double f1 = cfg.carrier1_hz / cfg.sample_rate;
  const double f2 = cfg.carrier2_hz / cfg.sample_rate;
  cordic.register_context(
      0, std::make_unique<accel::NcoMixer>(
             accel::NcoMixer::freq_from_normalized(-f1), "mix.ch1"));
  cordic.register_context(
      1, std::make_unique<accel::NcoMixer>(
             accel::NcoMixer::freq_from_normalized(-f2), "mix.ch2"));
  cordic.register_context(2,
                          std::make_unique<accel::FmDiscriminator>("fm.ch1"));
  cordic.register_context(3,
                          std::make_unique<accel::FmDiscriminator>("fm.ch2"));
  const std::vector<Q16> taps =
      accel::quantize_taps(accel::design_lowpass(cfg.fir_taps, cfg.fir_cutoff));
  for (sim::StreamId s = 0; s < 4; ++s) {
    fir.register_context(s, std::make_unique<accel::DecimatingFir>(
                                taps, cfg.decimation,
                                "lpf.s" + std::to_string(s)));
  }

  cordic.set_upstream(kEntry, kTagToCordic);
  cordic.set_downstream(kFir, kTagToFir, cfg.ni_capacity);
  fir.set_upstream(kCordic, kTagToCordic);
  fir.set_downstream(kExit, kTagToExit, cfg.ni_capacity);

  auto& exit_gw = sys.add<sim::ExitGateway>("exit", sys.ring(), kExit,
                                            cfg.delta, cfg.ni_capacity);
  exit_gw.set_upstream(kFir, kTagToFir);
  auto& entry = sys.add<sim::EntryGateway>("entry", sys.ring(), kEntry,
                                           cfg.epsilon, kCordic, kTagToCordic,
                                           cfg.ni_capacity);
  entry.set_chain({&cordic, &fir});
  entry.set_exit(&exit_gw);
  exit_gw.set_entry(&entry);

  if (cfg.trace != nullptr) {
    entry.set_trace(cfg.trace);
    exit_gw.set_trace(cfg.trace);
  }
  if (cfg.fault != nullptr) {
    entry.set_fault(cfg.fault);
    exit_gw.set_fault(cfg.fault);
    sys.ring().set_fault(cfg.fault);
    in1.set_fault(cfg.fault);
    in2.set_fault(cfg.fault);
    mid1.set_fault(cfg.fault);
    mid2.set_fault(cfg.fault);
  }
  if (cfg.notify_timeout > 0) {
    entry.set_retry_policy(sim::GatewayRetryPolicy{
        cfg.notify_timeout, cfg.notify_max_retries, cfg.notify_backoff});
  }

  const std::int64_t out1 = eta1 / cfg.decimation;
  entry.add_stream({0, "ch1.mix+lpf", eta1, out1, &in1, &mid1, cfg.reconfig});
  entry.add_stream({1, "ch2.mix+lpf", eta1, out1, &in2, &mid2, cfg.reconfig});
  entry.add_stream({2, "ch1.demod+lpf", eta2, burst, &mid1, &audio1,
                    cfg.reconfig});
  entry.add_stream({3, "ch2.demod+lpf", eta2, burst, &mid2, &audio2,
                    cfg.reconfig});

  // Front-end: hard real-time source fanned out to both stage-1 streams.
  auto& fe1 = sys.add<sim::SourceTile>("fe.ch1", in1, rf, cfg.input_period);
  auto& fe2 = sys.add<sim::SourceTile>("fe.ch2", in2, rf, cfg.input_period);

  // Software reconstruction task: L = 2*ch1 - ch2, R = ch2, with the FM
  // scale factor fs1/(2*deviation) folded in.
  const double fs1 = cfg.sample_rate / cfg.decimation;
  const Q16 gain = Q16::from_double(fs1 / (2.0 * cfg.deviation_hz));
  auto& cpu = sys.add<sim::ProcessorTile>("pt.recon", /*replenish=*/256);
  sim::Task recon{
      "reconstruct",
      [&, gain](sim::Cycle now) -> sim::Cycle {
        if (!audio1.can_pop(now) || !audio2.can_pop(now)) return 0;
        if (!out_l.can_push(now) || !out_r.can_push(now)) return 0;
        const CQ16 a = sim::unpack_sample(audio1.pop(now));  // (L+R)/2
        const CQ16 b = sim::unpack_sample(audio2.pop(now));  // R
        const Q16 sum2 = a.re * gain;                        // (L+R)/2
        const Q16 r = b.re * gain;
        const Q16 l = sum2 + sum2 - r;
        out_l.push(now, sim::pack_sample(CQ16{l, Q16{}}));
        out_r.push(now, sim::pack_sample(CQ16{r, Q16{}}));
        return 24;  // cycles per reconstruction
      },
      /*budget=*/192};
  // Horizon hint mirroring the invoke's guards: runnable once one sample is
  // visible on both audio FIFOs and one slot on both DAC FIFOs (each
  // condition is monotone while the system is frozen, so the max is exact).
  recon.next_ready = [&](sim::Cycle now) -> sim::Cycle {
    return std::max({audio1.when_fill_visible(1, now),
                     audio2.when_fill_visible(1, now),
                     out_l.when_space_visible(1, now),
                     out_r.when_space_visible(1, now)});
  };
  // Wake-list contract: the hint reads the audio fills and the DAC spaces.
  recon.wake_on_push = {&audio1, &audio2};
  recon.wake_on_pop = {&out_l, &out_r};
  cpu.add_task(std::move(recon));

  // DACs: hard real-time consumers at the audio rate. Audio arrives in
  // bursts of `burst` samples once per gateway round, so the DAC buffers a
  // full burst before starting.
  const sim::Cycle audio_period =
      cfg.input_period * cfg.decimation * cfg.decimation;
  auto& dac_l = sys.add<sim::SinkTile>("dac.left", out_l, audio_period,
                                       /*prefill=*/burst + 2);
  auto& dac_r = sys.add<sim::SinkTile>("dac.right", out_r, audio_period,
                                       /*prefill=*/burst + 2);

  if (cfg.metrics != nullptr) {
    obs::MetricsRegistry* reg = cfg.metrics;
    in1.set_metrics(reg);
    in2.set_metrics(reg);
    mid1.set_metrics(reg);
    mid2.set_metrics(reg);
    audio1.set_metrics(reg);
    audio2.set_metrics(reg);
    out_l.set_metrics(reg);
    out_r.set_metrics(reg);
    cordic.set_metrics(reg);
    fir.set_metrics(reg);
    entry.set_metrics(reg);
    exit_gw.set_metrics(reg);
    sys.ring().set_metrics(reg);
    fe1.set_metrics(reg);
    fe2.set_metrics(reg);
    cpu.set_metrics(reg);
    dac_l.set_metrics(reg);
    dac_r.set_metrics(reg);
    if (cfg.fault != nullptr) cfg.fault->set_metrics(reg);
  }

  // ---- Run: feed everything through, then drain. Underruns during the
  // feed phase are genuine real-time violations; underruns after the
  // front-end stops are just the end of the broadcast. ----
  const sim::Cycle feed =
      static_cast<sim::Cycle>(cfg.input_samples) * cfg.input_period;
  sys.run_with(cfg.stepper, feed);
  const std::int64_t feed_underruns = dac_l.underruns() + dac_r.underruns();
  sys.run_with(cfg.stepper, 8 * res.gamma);
  res.cycles_run = sys.now();
  res.stepper = sys.stepper_stats();

  // ---- Collect results. ----
  res.audio_rate = cfg.sample_rate / (cfg.decimation * cfg.decimation);
  for (sim::Flit f : dac_l.received())
    res.left.push_back(sim::unpack_sample(f).re.to_double());
  for (sim::Flit f : dac_r.received())
    res.right.push_back(sim::unpack_sample(f).re.to_double());
  res.source_drops = fe1.dropped() + fe2.dropped();
  res.sink_underruns = feed_underruns;
  // End-to-end latency: audio sample j depends on input samples up to
  // (j+1)*64 - 1, emitted nominally at that index times the input period.
  const std::int64_t dec2 = cfg.decimation * cfg.decimation;
  for (std::size_t j = 0; j < dac_l.timestamps().size(); ++j) {
    const sim::Cycle emitted =
        (static_cast<sim::Cycle>(j + 1) * dec2 - 1) * cfg.input_period;
    res.max_audio_latency =
        std::max(res.max_audio_latency, dac_l.timestamps()[j] - emitted);
  }
  res.gateway = entry.stats();
  res.cordic_samples = cordic.samples_processed();
  res.fir_samples = fir.samples_processed();
  res.cordic_busy = cordic.busy_cycles();
  res.fir_busy = fir.busy_cycles();
  for (sim::StreamId s = 0; s < 4; ++s) {
    res.blocks_per_stream.push_back(
        static_cast<std::int64_t>(entry.block_completions(s).size()));
  }
  return res;
}

PalSimResult run_pal_decoder_dedicated(const PalSimConfig& cfg) {
  PalSimResult res;
  res.utilization = sharing::utilization(make_system_spec(cfg));

  // No multiplexing: blocks exist only as DMA transfer granularity. Small,
  // decimation-aligned blocks keep latency low; nothing needs amortizing.
  const std::int64_t eta1 = 64;
  const std::int64_t eta2 = 32;
  res.eta_stage1 = eta1;
  res.eta_stage2 = eta2;
  res.gamma = 0;  // no round-robin round in the dedicated system

  std::vector<sim::Flit> rf_local;
  if (cfg.prebuilt_input == nullptr) {
    rf_local = synthesize_pal_input(cfg);
  } else {
    ACC_EXPECTS_MSG(cfg.prebuilt_input->size() == cfg.input_samples,
                    "prebuilt_input size does not match input_samples");
  }
  const std::vector<sim::Flit>& rf =
      cfg.prebuilt_input != nullptr ? *cfg.prebuilt_input : rf_local;

  // ---- Four private chains: nodes 4c .. 4c+3 per chain c. ----
  sim::System sys(16);
  const std::int64_t burst2 = eta2 / cfg.decimation;

  sim::CFifo& in1 = sys.add_fifo("in.ch1", 4 * eta1);
  sim::CFifo& in2 = sys.add_fifo("in.ch2", 4 * eta1);
  sim::CFifo& mid1 = sys.add_fifo("mid.ch1", 4 * eta2);
  sim::CFifo& mid2 = sys.add_fifo("mid.ch2", 4 * eta2);
  sim::CFifo& audio1 = sys.add_fifo("audio.ch1", 8 * burst2 + 64);
  sim::CFifo& audio2 = sys.add_fifo("audio.ch2", 8 * burst2 + 64);
  sim::CFifo& out_l = sys.add_fifo("dac.left", 8 * burst2 + 64);
  sim::CFifo& out_r = sys.add_fifo("dac.right", 8 * burst2 + 64);

  const std::vector<Q16> taps =
      accel::quantize_taps(accel::design_lowpass(cfg.fir_taps, cfg.fir_cutoff));
  const double f1 = cfg.carrier1_hz / cfg.sample_rate;
  const double f2 = cfg.carrier2_hz / cfg.sample_rate;

  struct Chain {
    sim::EntryGateway* entry = nullptr;
    sim::AcceleratorTile* first = nullptr;
    sim::AcceleratorTile* second = nullptr;
  };
  std::vector<Chain> chains(4);
  auto build_chain = [&](int c, std::unique_ptr<accel::StreamKernel> k1,
                         sim::CFifo* in, sim::CFifo* out, std::int64_t eta) {
    const std::int32_t base = 4 * c;
    auto& a1 = sys.add<sim::AcceleratorTile>("acc" + std::to_string(c) + ".0",
                                             sys.ring(), base + 1,
                                             cfg.accel_cycles,
                                             cfg.ni_capacity);
    auto& a2 = sys.add<sim::AcceleratorTile>("acc" + std::to_string(c) + ".1",
                                             sys.ring(), base + 2,
                                             cfg.accel_cycles,
                                             cfg.ni_capacity);
    a1.register_context(0, std::move(k1));
    a2.register_context(0, std::make_unique<accel::DecimatingFir>(
                               taps, cfg.decimation,
                               "lpf.c" + std::to_string(c)));
    a1.set_upstream(base, 1);
    a1.set_downstream(base + 2, 2, cfg.ni_capacity);
    a2.set_upstream(base + 1, 1);
    a2.set_downstream(base + 3, 3, cfg.ni_capacity);
    auto& exit_gw = sys.add<sim::ExitGateway>("exit" + std::to_string(c),
                                              sys.ring(), base + 3, cfg.delta,
                                              cfg.ni_capacity);
    exit_gw.set_upstream(base + 2, 2);
    // Dedicated DMA forwards at full speed; "reconfiguration" is a one-off
    // 1-cycle arm of the private chain.
    auto& entry = sys.add<sim::EntryGateway>("entry" + std::to_string(c),
                                             sys.ring(), base,
                                             /*epsilon=*/1, base + 1, 1,
                                             cfg.ni_capacity);
    entry.set_chain({&a1, &a2});
    entry.set_exit(&exit_gw);
    exit_gw.set_entry(&entry);
    entry.add_stream({0, "chain" + std::to_string(c), eta,
                      eta / cfg.decimation, in, out, /*reconfig=*/1});
    chains[c] = Chain{&entry, &a1, &a2};
  };

  build_chain(0,
              std::make_unique<accel::NcoMixer>(
                  accel::NcoMixer::freq_from_normalized(-f1), "mix.ch1"),
              &in1, &mid1, eta1);
  build_chain(1,
              std::make_unique<accel::NcoMixer>(
                  accel::NcoMixer::freq_from_normalized(-f2), "mix.ch2"),
              &in2, &mid2, eta1);
  build_chain(2, std::make_unique<accel::FmDiscriminator>("fm.ch1"), &mid1,
              &audio1, eta2);
  build_chain(3, std::make_unique<accel::FmDiscriminator>("fm.ch2"), &mid2,
              &audio2, eta2);

  auto& fe1 = sys.add<sim::SourceTile>("fe.ch1", in1, rf, cfg.input_period);
  auto& fe2 = sys.add<sim::SourceTile>("fe.ch2", in2, rf, cfg.input_period);

  const double fs1 = cfg.sample_rate / cfg.decimation;
  const Q16 gain = Q16::from_double(fs1 / (2.0 * cfg.deviation_hz));
  auto& cpu = sys.add<sim::ProcessorTile>("pt.recon", 256);
  sim::Task recon{
      "reconstruct",
      [&, gain](sim::Cycle now) -> sim::Cycle {
        if (!audio1.can_pop(now) || !audio2.can_pop(now)) return 0;
        if (!out_l.can_push(now) || !out_r.can_push(now)) return 0;
        const CQ16 a = sim::unpack_sample(audio1.pop(now));
        const CQ16 b = sim::unpack_sample(audio2.pop(now));
        const Q16 sum2 = a.re * gain;
        const Q16 r = b.re * gain;
        const Q16 l = sum2 + sum2 - r;
        out_l.push(now, sim::pack_sample(CQ16{l, Q16{}}));
        out_r.push(now, sim::pack_sample(CQ16{r, Q16{}}));
        return 24;
      },
      192};
  recon.next_ready = [&](sim::Cycle now) -> sim::Cycle {
    return std::max({audio1.when_fill_visible(1, now),
                     audio2.when_fill_visible(1, now),
                     out_l.when_space_visible(1, now),
                     out_r.when_space_visible(1, now)});
  };
  recon.wake_on_push = {&audio1, &audio2};
  recon.wake_on_pop = {&out_l, &out_r};
  cpu.add_task(std::move(recon));

  const sim::Cycle audio_period =
      cfg.input_period * cfg.decimation * cfg.decimation;
  auto& dac_l = sys.add<sim::SinkTile>("dac.left", out_l, audio_period,
                                       /*prefill=*/2 * burst2 + 2);
  auto& dac_r = sys.add<sim::SinkTile>("dac.right", out_r, audio_period,
                                       /*prefill=*/2 * burst2 + 2);

  const sim::Cycle feed =
      static_cast<sim::Cycle>(cfg.input_samples) * cfg.input_period;
  sys.run_with(cfg.stepper, feed);
  const std::int64_t feed_underruns = dac_l.underruns() + dac_r.underruns();
  sys.run_with(cfg.stepper, 64 * eta2 * cfg.input_period);
  res.cycles_run = sys.now();
  res.stepper = sys.stepper_stats();

  res.audio_rate = cfg.sample_rate / (cfg.decimation * cfg.decimation);
  for (sim::Flit f : dac_l.received())
    res.left.push_back(sim::unpack_sample(f).re.to_double());
  for (sim::Flit f : dac_r.received())
    res.right.push_back(sim::unpack_sample(f).re.to_double());
  res.source_drops = fe1.dropped() + fe2.dropped();
  res.sink_underruns = feed_underruns;
  for (const Chain& c : chains) {
    const sim::GatewayStats& st = c.entry->stats();
    res.gateway.blocks += st.blocks;
    res.gateway.samples_forwarded += st.samples_forwarded;
    res.gateway.data_cycles += st.data_cycles;
    res.gateway.reconfig_cycles += st.reconfig_cycles;
    res.gateway.wait_cycles += st.wait_cycles;
    // First stage of every chain is the CORDIC-class tile, second the FIR.
    res.cordic_samples += c.first->samples_processed();
    res.fir_samples += c.second->samples_processed();
    res.cordic_busy += c.first->busy_cycles();
    res.fir_busy += c.second->busy_cycles();
    res.blocks_per_stream.push_back(
        static_cast<std::int64_t>(c.entry->block_completions(0).size()));
  }
  return res;
}

}  // namespace acc::app
