// The paper's demonstrator (its Fig. 10): real-time PAL stereo audio
// decoding on the simulated MPSoC with ONE shared CORDIC tile and ONE
// shared FIR+down-sampler tile multiplexed over four streams by a single
// entry/exit-gateway pair.
//
//   front-end ==> s0: [CORDIC=mix(-f1)] -> [FIR /8]  ==> mid1
//   front-end ==> s1: [CORDIC=mix(-f2)] -> [FIR /8]  ==> mid2
//   mid1      ==> s2: [CORDIC=fm-demod] -> [FIR /8]  ==> audio1  ((L+R)/2)
//   mid2      ==> s3: [CORDIC=fm-demod] -> [FIR /8]  ==> audio2  (R)
//   audio1+audio2 --(software task: L = 2*ch1 - ch2)--> DAC sinks
//
// Block sizes come from Algorithm 1 (rounded up to the 8:1 decimation so
// each block produces a fixed number of outputs); the real-time verdict is
// "no front-end drops and no DAC underruns".
#pragma once

#include <cstdint>
#include <vector>

#include "lint/linter.hpp"
#include "obs/metrics.hpp"
#include "radio/signal.hpp"
#include "sharing/spec.hpp"
#include "sim/fault.hpp"
#include "sim/gateway.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace acc::app {

using sharing::Time;

struct PalSimConfig {
  // --- signal scenario (scaled-down broadcast; see DESIGN.md) ---
  double sample_rate = 512000.0;  // front-end complex rate, Hz
  double carrier1_hz = 120000.0;
  double carrier2_hz = 180000.0;
  double deviation_hz = 15000.0;
  double tone_left_hz = 400.0;
  double tone_right_hz = 700.0;
  double tone_amplitude = 0.8;
  /// Front-end samples to synthesize (sets the run length).
  std::size_t input_samples = 1 << 16;

  // --- architecture parameters (paper defaults) ---
  Time input_period = 40;  // cycles between front-end samples (sets mu)
  Time epsilon = 15;       // entry-gateway cycles/sample
  Time delta = 1;          // exit-gateway cycles/sample
  Time accel_cycles = 1;   // CORDIC and FIR cycles/sample
  Time reconfig = 4100;    // R_s
  std::int64_t ni_capacity = 2;
  int fir_taps = 33;
  double fir_cutoff = 0.06;
  int decimation = 8;

  /// Block sizes; 0 = solve with Algorithm 1 and round up to `decimation`.
  std::int64_t eta_stage1 = 0;
  std::int64_t eta_stage2 = 0;

  /// C-FIFO capacities as a multiple of the stream's block size.
  std::int64_t fifo_slack = 4;

  // --- robustness (optional; shared-chain decoder only) ---
  /// Fault injection: wires the gateways, the dual ring and the four
  /// gateway-facing C-FIFOs (in/mid). Caller owns the injector.
  sim::FaultInjector* fault = nullptr;
  /// Event trace of the gateways (conformance checking input).
  sim::TraceLog* trace = nullptr;
  /// Opt-in metrics: wires every C-FIFO, tile, gateway, the dual ring and
  /// (when set) the fault injector into the registry. Null (the default)
  /// keeps the hot path metric-free — every handle no-ops. The snapshot is
  /// bit-identical across steppers and any --jobs count; caller owns the
  /// registry. See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
  /// Entry-gateway notification recovery; 0 disables (seed behaviour).
  sim::Cycle notify_timeout = 0;
  int notify_max_retries = 8;
  sim::Cycle notify_backoff = 0;

  /// Stepper selection: kWakeList (default, incremental wake-list
  /// scheduler), kGlobalHorizon (all-or-nothing skip) or kDense (legacy
  /// per-cycle loop). Cycle-exact all three — this switch exists for
  /// equivalence tests and the E9 dense-vs-event benchmark.
  sim::StepperKind stepper = sim::StepperKind::kWakeList;

  /// Run acc-lint over the assembled configuration (resolved block sizes,
  /// C-FIFO capacities, gateway wiring, fault config) before simulating;
  /// error-tier findings abort the run. The examples' --no-lint flag and
  /// tests that deliberately build broken systems turn this off.
  bool lint = true;

  /// Pre-synthesized, quantized front-end input. When non-null the decoder
  /// streams these flits (size must equal input_samples) instead of
  /// synthesizing them — exactly what synthesize_pal_input returns for the
  /// same scenario. Lets callers amortize the trig-heavy synthesis across
  /// runs of one scenario: the stepper bench shares a single waveform so
  /// wall_ms measures the stepper, not three identical sin() sweeps.
  const std::vector<sim::Flit>* prebuilt_input = nullptr;
};

struct PalSimResult {
  // Recovered audio (software gain applied), one entry per DAC sample.
  std::vector<double> left;
  std::vector<double> right;
  double audio_rate = 0.0;  // Hz

  // Real-time verdict.
  std::int64_t source_drops = 0;
  std::int64_t sink_underruns = 0;

  // Analysis-side numbers (Algorithm 1 on the configured system).
  std::int64_t eta_stage1 = 0;
  std::int64_t eta_stage2 = 0;
  Time gamma = 0;
  acc::Rational utilization;

  // Measured system behaviour.
  /// Maximum end-to-end latency of an audio sample: DAC consumption time
  /// minus the nominal front-end emission time of its last contributing
  /// input sample (includes DAC prefill buffering). -1 if not measurable.
  sim::Cycle max_audio_latency = -1;
  sim::GatewayStats gateway;
  std::int64_t cordic_samples = 0;
  std::int64_t fir_samples = 0;
  sim::Cycle cordic_busy = 0;
  sim::Cycle fir_busy = 0;
  sim::Cycle cycles_run = 0;
  /// Stepper instrumentation (dense ticks vs skipped cycles).
  sim::StepperStats stepper;
  /// Per-stream block completion counts (round-robin fairness check).
  std::vector<std::int64_t> blocks_per_stream;
};

/// The SharedSystemSpec (Algorithm-1 input) implied by a PalSimConfig.
[[nodiscard]] sharing::SharedSystemSpec make_system_spec(const PalSimConfig& cfg);

/// The full lintable model of the demonstrator: spec, resolved block sizes
/// (when feasible), C-FIFO capacities, the entry/exit gateway pair with its
/// consumer wiring, the fault config and the determinism posture. This is
/// what run_pal_decoder lints before building the system.
[[nodiscard]] lint::LintInput make_lint_input(const PalSimConfig& cfg);

/// Synthesize the broadcast and quantize it to flits — bit-identical to the
/// input run_pal_decoder builds internally when cfg.prebuilt_input is null.
[[nodiscard]] std::vector<sim::Flit> synthesize_pal_input(
    const PalSimConfig& cfg);

/// Build, run and measure the whole demonstrator.
[[nodiscard]] PalSimResult run_pal_decoder(const PalSimConfig& cfg);

/// The paper's implicit baseline: the same application with DEDICATED
/// accelerators — four CORDIC and four FIR tiles, one private chain per
/// stream, no multiplexing (and hence no reconfiguration and no round-robin
/// wait). Fills the same PalSimResult; `cordic_samples`/`fir_samples` and
/// busy cycles aggregate over all four instances of each type, and
/// `eta_*`/`gamma` describe the per-chain transfer granularity (blocks
/// still exist because the exit DMA is armed per block, but they need not
/// amortize any switching cost).
[[nodiscard]] PalSimResult run_pal_decoder_dedicated(const PalSimConfig& cfg);

}  // namespace acc::app
