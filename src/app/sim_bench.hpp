// Simulator perf-trajectory workload and its BENCH_sim.json document.
//
// E9 (bench_perf_analysis) measures the PAL stereo decoder under BOTH
// steppers — the legacy dense loop and the event-horizon core — and writes
// cycles/second plus the skip statistics to BENCH_sim.json, the repo's
// simulator perf baseline (later PRs have a trajectory to beat). The
// workload and document builder live here, not inside the bench binary, so
// the golden-schema tests (tests/sharing/bench_schema_test.cpp) exercise
// the exact code the bench ships, on a workload scaled down to test size.
// See docs/performance.md.
#pragma once

#include <cstdint>
#include <string>

#include "app/pal_system.hpp"
#include "common/json.hpp"

namespace acc::app {

/// PAL decoder scenario for the simulator bench. `fast` shrinks the input
/// to ctest size (sub-second) while keeping every architectural parameter —
/// the perf `ctest -L perf` entry uses it, the full bench run does not.
[[nodiscard]] PalSimConfig sim_bench_pal_config(bool fast);

/// One measured stepper run: timing plus a digest of the simulation's
/// observable outcome. Two runs with equal digests produced bit-identical
/// audio and verdicts — the cross-stepper equivalence check the bench and
/// the perf ctest both enforce.
struct SimBenchRun {
  std::string mode;  // "dense" | "event"
  double wall_ms = 0.0;
  std::int64_t cycles = 0;       // simulated cycles
  double cycles_per_sec = 0.0;   // simulated cycles per wall second
  std::int64_t dense_ticks = 0;  // cycles actually ticked
  std::int64_t skips = 0;
  std::int64_t skipped_cycles = 0;
  // Wake-list instrumentation (all steppers fill these; the dense loop has
  // zero horizon queries and zero wakes by construction).
  std::int64_t component_ticks = 0;   // Component::tick calls
  std::int64_t horizon_queries = 0;   // next_event consultations
  std::int64_t wakes = 0;             // wake notifications delivered
  // Outcome digest.
  std::int64_t sink_samples = 0;
  std::int64_t source_drops = 0;
  std::int64_t sink_underruns = 0;
  std::int64_t blocks = 0;
  std::int64_t audio_checksum = 0;  // FNV-1a over the quantized DAC output

  [[nodiscard]] bool same_outcome(const SimBenchRun& other) const {
    return cycles == other.cycles && sink_samples == other.sink_samples &&
           source_drops == other.source_drops &&
           sink_underruns == other.sink_underruns && blocks == other.blocks &&
           audio_checksum == other.audio_checksum;
  }
};

/// Run the decoder once under the chosen stepper and measure it. The run's
/// `mode` string is "dense" for kDense and "event" otherwise (both event
/// steppers fill the same BENCH_sim.json slot; the wake-list is the
/// shipping default).
[[nodiscard]] SimBenchRun sim_bench_run(const PalSimConfig& pal,
                                        sim::StepperKind kind);

/// Assemble the BENCH_sim.json document:
/// {bench: "sim", workload: {...}, runs: [dense, event], speedup,
/// equivalent}. Validated by common/bench_schema.hpp.
[[nodiscard]] json::Value sim_bench_doc(const PalSimConfig& pal,
                                        const SimBenchRun& dense,
                                        const SimBenchRun& event);

}  // namespace acc::app
