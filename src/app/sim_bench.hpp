// Simulator perf-trajectory workload and its BENCH_sim.json document.
//
// E9 (bench_perf_analysis) measures the PAL stereo decoder under BOTH
// steppers — the legacy dense loop and the event-horizon core — and writes
// cycles/second plus the skip statistics to BENCH_sim.json, the repo's
// simulator perf baseline (later PRs have a trajectory to beat). The
// workload and document builder live here, not inside the bench binary, so
// the golden-schema tests (tests/sharing/bench_schema_test.cpp) exercise
// the exact code the bench ships, on a workload scaled down to test size.
// See docs/performance.md.
#pragma once

#include <cstdint>
#include <string>

#include "app/pal_system.hpp"
#include "common/json.hpp"

namespace acc::app {

/// PAL decoder scenario for the simulator bench. `fast` shrinks the input
/// to ctest size (sub-second) while keeping every architectural parameter —
/// the perf `ctest -L perf` entry uses it, the full bench run does not.
[[nodiscard]] PalSimConfig sim_bench_pal_config(bool fast);

/// One measured stepper run: timing plus a digest of the simulation's
/// observable outcome. Two runs with equal digests produced bit-identical
/// audio and verdicts — the cross-stepper equivalence check the bench and
/// the perf ctest both enforce.
struct SimBenchRun {
  std::string mode;  // "dense" | "event" | "wake_list"
  double wall_ms = 0.0;
  std::int64_t cycles = 0;  // simulated cycles
  // Simulated cycles per wall second; NaN when the wall clock rounded to
  // zero (sub-millisecond --sim-fast runs) — serialized as JSON null.
  double cycles_per_sec = 0.0;
  std::int64_t dense_ticks = 0;  // cycles actually ticked
  std::int64_t skips = 0;
  std::int64_t skipped_cycles = 0;
  // Wake-list instrumentation (all steppers fill these; the dense loop has
  // zero horizon queries and zero wakes by construction).
  std::int64_t component_ticks = 0;   // Component::tick calls
  std::int64_t horizon_queries = 0;   // next_event consultations
  std::int64_t wakes = 0;             // wake notifications delivered
  // Batched data plane (ISSUE 8): granted runs executed at virtual cycles
  // and the tokens/invocations they moved. Zero under dense/event by
  // construction — only the wake-list stepper issues grants.
  std::int64_t batch_runs = 0;
  std::int64_t batch_tokens = 0;
  // Outcome digest.
  std::int64_t sink_samples = 0;
  std::int64_t source_drops = 0;
  std::int64_t sink_underruns = 0;
  std::int64_t blocks = 0;
  std::int64_t audio_checksum = 0;  // FNV-1a over the quantized DAC output

  [[nodiscard]] bool same_outcome(const SimBenchRun& other) const {
    return cycles == other.cycles && sink_samples == other.sink_samples &&
           source_drops == other.source_drops &&
           sink_underruns == other.sink_underruns && blocks == other.blocks &&
           audio_checksum == other.audio_checksum;
  }
};

/// Run the decoder once under the chosen stepper and measure it. The run's
/// `mode` string names the stepper: "dense" (kDense), "event"
/// (kGlobalHorizon) or "wake_list" (kWakeList, the shipping default).
[[nodiscard]] SimBenchRun sim_bench_run(const PalSimConfig& pal,
                                        sim::StepperKind kind);

/// Assemble the BENCH_sim.json document:
/// {bench: "sim", workload: {...}, runs: [dense, event, wake_list],
/// speedup, equivalent}. `speedup` compares the wake-list run against
/// dense and is null when either wall clock rounded to zero. Validated by
/// common/bench_schema.hpp.
[[nodiscard]] json::Value sim_bench_doc(const PalSimConfig& pal,
                                        const SimBenchRun& dense,
                                        const SimBenchRun& event,
                                        const SimBenchRun& wake);

}  // namespace acc::app
