#include "sharing/csdf_model.hpp"

#include "sharing/analysis.hpp"

namespace acc::sharing {

namespace {

/// <x, (n-1) copies of y>.
std::vector<std::int64_t> first_then(std::int64_t n, std::int64_t x,
                                     std::int64_t y) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n), y);
  v[0] = x;
  return v;
}

/// <(n-1) copies of y, x>.
std::vector<std::int64_t> last_is(std::int64_t n, std::int64_t y,
                                  std::int64_t x) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n), y);
  v[static_cast<std::size_t>(n) - 1] = x;
  return v;
}

}  // namespace

CsdfStreamModel build_csdf_stream_model(const SharedSystemSpec& sys,
                                        std::size_t stream,
                                        const CsdfModelOptions& opt) {
  sys.validate();
  ACC_EXPECTS(stream < sys.num_streams());
  ACC_EXPECTS(opt.eta >= 1);
  ACC_EXPECTS_MSG(opt.alpha0 >= opt.eta,
                  "alpha0 must hold at least one block (admission checks "
                  "eta input tokens atomically)");
  ACC_EXPECTS_MSG(opt.alpha3 >= opt.eta,
                  "alpha3 must hold at least one block (admission reserves "
                  "eta output slots atomically)");

  const ChainSpec& chain = sys.chain;
  const StreamSpec& st = sys.streams[stream];
  const std::int64_t eta = opt.eta;

  CsdfStreamModel m;
  df::Graph& g = m.graph;

  m.producer = g.add_sdf_actor("vP", opt.producer_period);

  // Entry-gateway: eta phases. Phase 0 carries contention + reconfiguration
  // + the first sample's forwarding; the rest forward one sample each
  // (Eq. 1: rho_G0[0] = s_hat + R_s + epsilon).
  std::vector<Time> g0_dur(static_cast<std::size_t>(eta),
                           chain.entry_cycles_per_sample);
  g0_dur[0] = opt.contention + st.reconfig + chain.entry_cycles_per_sample;
  m.entry = g.add_actor("vG0", std::move(g0_dur));

  for (std::size_t a = 0; a < chain.num_accelerators(); ++a) {
    m.accelerators.push_back(g.add_sdf_actor(
        "vA" + std::to_string(a), chain.accel_cycles_per_sample[a]));
  }

  std::vector<Time> g1_dur(static_cast<std::size_t>(eta),
                           chain.exit_cycles_per_sample);
  m.exit = g.add_actor("vG1", std::move(g1_dur));

  m.consumer = g.add_sdf_actor("vC", opt.consumer_period);

  // alpha0: vP -> vG0. vG0 claims the whole block in phase 0 and returns
  // the input-buffer space one sample at a time as it forwards.
  m.input_buffer = g.add_channel(
      m.producer, m.entry, /*prod=*/{1},
      /*cons=*/first_then(eta, eta, 0), /*capacity=*/opt.alpha0,
      /*initial_tokens=*/0, "alpha0");

  // NI channels through the chain; every hop forwards one sample per phase.
  df::ActorId prev = m.entry;
  std::vector<std::int64_t> one_per_entry_phase(static_cast<std::size_t>(eta),
                                                1);
  for (std::size_t a = 0; a < chain.num_accelerators(); ++a) {
    const df::ActorId acc = m.accelerators[a];
    m.ni_channels.push_back(g.add_channel(
        prev, acc,
        prev == m.entry ? one_per_entry_phase : std::vector<std::int64_t>{1},
        {1}, chain.ni_capacity, 0, "ni" + std::to_string(a)));
    prev = acc;
  }
  m.ni_channels.push_back(g.add_channel(
      prev, m.exit,
      prev == m.entry ? one_per_entry_phase : std::vector<std::int64_t>{1},
      std::vector<std::int64_t>(static_cast<std::size_t>(eta), 1),
      chain.ni_capacity, 0, "ni_exit"));

  // alpha3 data: vG1 -> vC, one token per exit phase.
  m.output_data = g.add_edge(
      m.exit, m.consumer, std::vector<std::int64_t>(eta, 1), {1}, 0, "out.data");
  // alpha3 space: vC -> vG0 — the entry-gateway checks output space at
  // admission (the paper's Section V-G justifies why this check must exist).
  // Initially the buffer is empty, so all alpha3 slots are free.
  m.output_space =
      g.add_edge(m.consumer, m.entry, {1}, first_then(eta, eta, 0),
                 opt.alpha3, "out.space");

  // Pipeline-idle token: produced by vG1's last phase, consumed by vG0's
  // first phase; one initial token (the pipeline starts idle).
  m.idle_edge = g.add_edge(m.exit, m.entry, last_is(eta, 0, 1),
                           first_then(eta, 1, 0), 1, "idle");

  g.validate();
  return m;
}

}  // namespace acc::sharing
