#include "sharing/parametric.hpp"

namespace acc::sharing {

Time ParametricCompletion::eval(std::int64_t eta) const {
  ACC_EXPECTS(eta >= 1);
  if (eta < eta_linear_)
    return prefix_[static_cast<std::size_t>(eta - 1)];
  return slope_ * eta + intercept_;
}

ParametricCompletion parametric_block_completion(const SharedSystemSpec& sys,
                                                 std::size_t stream) {
  sys.validate();
  ACC_EXPECTS(stream < sys.num_streams());

  ParametricCompletion out;
  // Compute exact completions until the first differences stabilize for a
  // whole pipeline-depth worth of steps: once every stage has entered its
  // steady pattern, the schedule recurrence is shift-invariant in eta and
  // the completion is affine forever after.
  const std::size_t depth =
      sys.chain.num_accelerators() + 2;  // stages incl. gateways
  const std::size_t stable_needed = 2 * depth + 2;
  std::vector<Time> tau;
  std::size_t stable = 0;
  for (std::int64_t eta = 1; eta <= 4096; ++eta) {
    tau.push_back(block_schedule(sys, stream, eta).completion);
    if (tau.size() >= 3) {
      const Time d1 = tau[tau.size() - 1] - tau[tau.size() - 2];
      const Time d2 = tau[tau.size() - 2] - tau[tau.size() - 3];
      stable = d1 == d2 ? stable + 1 : 0;
    }
    if (stable >= stable_needed) break;
  }
  ACC_CHECK_MSG(stable >= stable_needed,
                "block completion never became affine (modelling bug)");

  const std::int64_t eta_hi = static_cast<std::int64_t>(tau.size());
  out.slope_ = tau[tau.size() - 1] - tau[tau.size() - 2];
  out.intercept_ = tau[tau.size() - 1] - out.slope_ * eta_hi;
  // Find the smallest eta where the affine law already holds.
  std::int64_t eta_linear = eta_hi;
  while (eta_linear > 1 &&
         tau[static_cast<std::size_t>(eta_linear - 2)] ==
             out.slope_ * (eta_linear - 1) + out.intercept_) {
    --eta_linear;
  }
  out.eta_linear_ = eta_linear;
  out.prefix_.assign(tau.begin(), tau.begin() + (eta_linear - 1));

  // Verify extrapolation exactness far beyond the construction horizon.
  for (const std::int64_t probe : {8 * eta_hi, 1024 + eta_hi, 100000 + 0L}) {
    if (probe <= eta_hi) continue;
    ACC_CHECK_MSG(block_schedule(sys, stream, probe).completion ==
                      out.slope_ * probe + out.intercept_,
                  "affine extrapolation mismatch (modelling bug)");
  }
  return out;
}

}  // namespace acc::sharing
