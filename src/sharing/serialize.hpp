// JSON (de)serialization of shared-system specifications — experiment
// configurations as data, consumed by the accshare_analyze CLI and the
// bench harnesses.
//
// Format:
// {
//   "chain": {"accelerators": [1, 1], "entry": 15, "exit": 1,
//             "ni_capacity": 2},
//   "streams": [{"name": "s0", "mu_num": 441, "mu_den": 1000000,
//                "reconfig": 4100}, ...]
// }
#pragma once

#include <string>

#include "common/json.hpp"
#include "sharing/spec.hpp"

namespace acc::sharing {

[[nodiscard]] json::Value spec_to_json(const SharedSystemSpec& sys);

/// Rebuild and validate; throws acc::precondition_error on malformed input.
[[nodiscard]] SharedSystemSpec spec_from_json(const json::Value& v);

[[nodiscard]] std::string spec_to_string(const SharedSystemSpec& sys);
[[nodiscard]] SharedSystemSpec spec_from_string(const std::string& text);

}  // namespace acc::sharing
