#include "sharing/maxplus_schedule.hpp"

#include "sharing/analysis.hpp"

namespace acc::sharing {

using df::MaxPlus;
using df::MaxPlusMatrix;

Time MaxPlusChain::completion(std::int64_t eta) const {
  ACC_EXPECTS(eta >= 1);
  std::vector<MaxPlus> y = initial_;
  for (std::int64_t j = 1; j < eta; ++j) y = step_.apply(y);
  return y[stages_ - 1].value();
}

std::optional<Rational> MaxPlusChain::eigenvalue() const {
  return df::maxplus_eigenvalue(step_);
}

std::optional<df::Cyclicity> MaxPlusChain::cyclicity(
    std::int64_t max_power) const {
  return df::maxplus_cyclicity(step_, max_power);
}

MaxPlusChain build_maxplus_chain(const SharedSystemSpec& sys,
                                 std::size_t stream) {
  sys.validate();
  ACC_EXPECTS(stream < sys.num_streams());
  const ChainSpec& chain = sys.chain;

  // Stage durations: entry gateway, accelerators, exit gateway.
  std::vector<Time> dur{chain.entry_cycles_per_sample};
  for (Time rho : chain.accel_cycles_per_sample) dur.push_back(rho);
  dur.push_back(chain.exit_cycles_per_sample);
  const std::size_t stages = dur.size();
  const auto alpha = static_cast<std::size_t>(chain.ni_capacity);

  // State: alpha blocks of `stages` entries — F(j), F(j-1), ..,
  // F(j-alpha+1). One step advances j by one.
  const std::size_t state = stages * alpha;
  MaxPlusChain mc(state);
  mc.stages_ = stages;

  // Rows for the F(j) block are built by forward substitution: each stage's
  // dependence on the SAME step's upstream stage folds into the upstream
  // row (lower-triangular elimination in max-plus).
  std::vector<std::vector<MaxPlus>> rows(
      stages, std::vector<MaxPlus>(state, MaxPlus::neg_inf()));
  for (std::size_t m = 0; m < stages; ++m) {
    std::vector<MaxPlus> deps(state, MaxPlus::neg_inf());
    // F_m(j-1): entry m of the first (previous-step) block.
    deps[m] = MaxPlus(0);
    // F_{m+1}(j-alpha): entry m+1 of the (alpha-1)-th previous block —
    // available in the state only when alpha >= 2 (paper hardware: 2).
    if (m + 1 < stages && alpha >= 2) {
      deps[stages * (alpha - 1) + (m + 1)] = MaxPlus(0);
    }
    // F_{m-1}(j): substitute the already-built upstream row.
    if (m > 0) {
      for (std::size_t c = 0; c < state; ++c)
        deps[c] = deps[c] | rows[m - 1][c];
    }
    for (std::size_t c = 0; c < state; ++c)
      rows[m][c] = deps[c] * MaxPlus(dur[m]);
  }
  for (std::size_t m = 0; m < stages; ++m)
    for (std::size_t c = 0; c < state; ++c) mc.step_.set(m, c, rows[m][c]);
  // Shift blocks: y(j)[block b] = y(j-1)[block b-1] for b >= 1... block b
  // holds F(j-b); after the step F(j-b) = previous F(j-(b-1)).
  for (std::size_t b = 1; b < alpha; ++b) {
    for (std::size_t m = 0; m < stages; ++m)
      mc.step_.set(stages * b + m, stages * (b - 1) + m, MaxPlus(0));
  }

  // Initial vector y(1): the first sample ripples down the idle pipeline
  // after reconfiguration; all older history is -inf.
  mc.initial_.assign(state, MaxPlus::neg_inf());
  Time t = sys.streams[stream].reconfig;
  for (std::size_t m = 0; m < stages; ++m) {
    t += dur[m];
    mc.initial_[m] = MaxPlus(t);
  }
  return mc;
}

}  // namespace acc::sharing
