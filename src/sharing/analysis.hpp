// Worst-case timing analysis of gateway-multiplexed accelerator chains:
// Equations 1-5 of the paper and the parameterized schedule of its Fig. 6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rational.hpp"
#include "sharing/spec.hpp"

namespace acc::sharing {

/// c0 = max(epsilon, rho_A, delta): the slowest stage of the pipeline
/// determines the per-sample cost (Eq. 2 / "Given that" in Algorithm 1).
[[nodiscard]] Time bottleneck_cycles_per_sample(const ChainSpec& chain);

/// Pipeline tail: how many extra sample-slots beyond the block itself are
/// needed to flush the chain. The paper's single-accelerator Fig. 6 yields
/// (eta + 2)*c0 — one slot for the accelerator plus one for the
/// exit-gateway; a chain of k accelerators generalizes to eta + k + 1.
[[nodiscard]] std::int64_t pipeline_tail(const ChainSpec& chain);

/// tau_hat_s (Eq. 2): worst-case time to process one block of eta samples of
/// stream s once the gateway turns to it: reconfiguration plus a pipelined
/// pass over the block plus the flush tail.
[[nodiscard]] Time tau_hat(const SharedSystemSpec& sys, std::size_t stream,
                           std::int64_t eta);

/// s_hat_s (Eq. 3): worst-case wait before stream s's turn under round-robin
/// — every other stream processes one full block first.
[[nodiscard]] Time s_hat(const SharedSystemSpec& sys, std::size_t stream,
                         const std::vector<std::int64_t>& etas);

/// gamma_hat_s (Eq. 4): worst-case round duration = sum of all streams'
/// tau_hat. With identical round-robin service this is stream-independent.
[[nodiscard]] Time gamma_hat(const SharedSystemSpec& sys,
                             const std::vector<std::int64_t>& etas);

/// Eq. 5: does every stream meet its throughput constraint
/// eta_s / gamma_hat >= mu_s with the given block sizes?
[[nodiscard]] bool throughput_met(const SharedSystemSpec& sys,
                                  const std::vector<std::int64_t>& etas);

/// Fraction of the bottleneck budget consumed: c0 * sum(mu_s). The
/// block-size problem is feasible iff this is < 1 (the real relaxation of
/// Algorithm 1 has a finite solution exactly then).
[[nodiscard]] Rational utilization(const SharedSystemSpec& sys);

/// Worst-case latency (cycles) from a sample's arrival in stream s's input
/// C-FIFO to its delivery into the output C-FIFO — an analysis the paper
/// leaves implicit. In the worst case the sample is the FIRST of its block
/// and waits (eta_s - 1) sample periods for the block to fill, then the
/// block waits for every other stream's turn and its own service: together
/// gamma_hat (Eq. 4). Blocking by batching is the latency price of
/// amortizing R_s — quantified by bench_ablation_reconfig.
[[nodiscard]] Time worst_case_sample_latency(
    const SharedSystemSpec& sys, std::size_t stream,
    const std::vector<std::int64_t>& etas, Time sample_period);

/// One bar of the Fig. 6 Gantt chart.
struct ScheduleEntry {
  std::string actor;   // "G0", "A0", "A1", ..., "G1"
  std::int64_t index;  // sample index within the block
  Time start = 0;
  Time end = 0;
};

struct BlockSchedule {
  std::vector<ScheduleEntry> entries;
  /// Completion time of the block (exit-gateway finishes the last sample):
  /// the exact tau_s of the paper's Fig. 6 (assuming an idle pipeline).
  Time completion = 0;
};

/// Construct the exact self-timed schedule of one block of stream s through
/// the chain (paper Fig. 6), parameterized in eta. Assumes the pipeline was
/// idle (s_s = 0) and all eta input samples plus output space are available,
/// which is precisely what the entry-gateway admission check guarantees.
[[nodiscard]] BlockSchedule block_schedule(const SharedSystemSpec& sys,
                                           std::size_t stream,
                                           std::int64_t eta);

/// Render a BlockSchedule as an ASCII Gantt chart (one row per stage,
/// `width` characters across the full span) — the printable form of the
/// paper's Fig. 6.
[[nodiscard]] std::string render_gantt(const BlockSchedule& schedule,
                                       int width = 72);

}  // namespace acc::sharing
