#include "sharing/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/table.hpp"
#include "sharing/analysis.hpp"

namespace acc::sharing {

SystemReport analyze_system(const SharedSystemSpec& sys,
                            const ReportOptions& opt) {
  sys.validate();
  ACC_EXPECTS(opt.sample_periods.empty() ||
              opt.sample_periods.size() == sys.num_streams());
  ACC_EXPECTS(opt.consumer_chunks.empty() ||
              opt.consumer_chunks.size() == sys.num_streams());

  SystemReport rep;
  rep.utilization = utilization(sys);
  if (rep.utilization >= Rational(1)) return rep;  // not schedulable

  const BlockSizeResult fix = solve_block_sizes_fixpoint(sys);
  const BlockSizeResult ilp = solve_block_sizes_ilp(sys);
  if (!fix.feasible || !ilp.feasible) return rep;
  rep.schedulable = true;
  rep.solvers_agree = fix.eta == ilp.eta;
  rep.gamma = fix.gamma;

  const ParametricCompletion law = parametric_block_completion(sys, 0);
  rep.law_slope = law.slope();
  rep.law_intercept = law.intercept();

  for (std::size_t s = 0; s < sys.num_streams(); ++s) {
    StreamReport sr;
    sr.name = sys.streams[s].name;
    sr.mu = sys.streams[s].mu;
    sr.eta = fix.eta[s];
    sr.tau_hat = tau_hat(sys, s, fix.eta[s]);
    sr.s_hat = s_hat(sys, s, fix.eta);
    sr.guaranteed_rate = Rational(fix.eta[s]) / Rational(fix.gamma);
    if (opt.size_buffers) {
      const Time period = opt.sample_periods.empty()
                              ? sys.streams[s].mu.reciprocal().floor()
                              : opt.sample_periods[s];
      const std::int64_t chunk =
          opt.consumer_chunks.empty() ? 1 : opt.consumer_chunks[s];
      if (period >= 1) {
        sr.buffers = min_buffers_for_stream(sys, s, fix.eta, period, chunk);
      }
    }
    rep.streams.push_back(std::move(sr));
  }
  return rep;
}

std::string SystemReport::to_markdown(const SharedSystemSpec& sys) const {
  std::ostringstream os;
  os << "# Shared-accelerator design report\n\n";
  os << "## System\n\n";
  os << "- accelerator chain (cycles/sample):";
  for (Time rho : sys.chain.accel_cycles_per_sample) os << ' ' << rho;
  os << "\n- entry-gateway epsilon: " << sys.chain.entry_cycles_per_sample
     << " cycles/sample\n- exit-gateway delta: "
     << sys.chain.exit_cycles_per_sample
     << " cycles/sample\n- NI FIFO depth: " << sys.chain.ni_capacity
     << "\n- streams: " << sys.num_streams() << "\n\n";

  os << "## Schedulability\n\n";
  os << "- utilization c0*sum(mu) = " << utilization.str() << " = "
     << fmt_double(utilization.to_double(), 4) << "\n";
  if (!schedulable) {
    os << "- **NOT SCHEDULABLE** (utilization >= 1 or no feasible blocks)\n";
    return os.str();
  }
  os << "- worst-case round gamma_hat = " << fmt_int(gamma) << " cycles\n";
  os << "- block-size solvers (ILP vs least fixed point): "
     << (solvers_agree ? "agree" : "**DISAGREE (bug!)**") << "\n";
  os << "- derived completion law: tau(eta) = " << law_slope
     << "*eta + " << law_intercept << " (exact, Fig. 6 schedule)\n\n";

  os << "## Streams\n\n";
  Table t({"stream", "mu (samples/cycle)", "eta (Alg. 1)", "tau_hat",
           "s_hat", "guaranteed rate", "alpha0", "alpha3"});
  for (const StreamReport& s : streams) {
    std::string a0 = "-";
    std::string a3 = "-";
    if (s.buffers && s.buffers->feasible) {
      a0 = std::to_string(s.buffers->alpha0);
      a3 = std::to_string(s.buffers->alpha3);
    }
    t.add_row({s.name, s.mu.str(), std::to_string(s.eta),
               fmt_int(s.tau_hat), fmt_int(s.s_hat),
               fmt_double(s.guaranteed_rate.to_double(), 6), a0, a3});
  }
  os << t.render();
  os << "\nEvery stream's guaranteed rate is >= its required mu "
        "(Eq. 5 verified with exact rational arithmetic).\n";
  return os.str();
}

std::vector<ObservedStream> observe_streams(
    const SharedSystemSpec& sys, const std::vector<std::int64_t>& etas,
    const sim::TraceLog& trace, sim::Cycle slack) {
  sys.validate();
  ACC_EXPECTS(etas.size() == sys.num_streams());
  ACC_EXPECTS(slack >= 0);

  const Time gamma = gamma_hat(sys, etas);
  std::vector<ObservedStream> out(sys.num_streams());
  // Raw (pre-slack) spacing bound doubles as the starvation cutoff, exactly
  // as in check_conformance.
  std::vector<Time> sbound(sys.num_streams());
  for (std::size_t s = 0; s < sys.num_streams(); ++s) {
    const Time input_limited = (Rational(etas[s]) / sys.streams[s].mu).ceil();
    sbound[s] = std::max(gamma, input_limited);
    out[s].service_bound = tau_hat(sys, s, etas[s]) + slack;
    out[s].spacing_bound = sbound[s] + slack;
  }

  std::map<std::int64_t, sim::Cycle> open_admit;
  std::map<std::int64_t, sim::Cycle> last_done;
  for (const sim::TraceEvent& e : trace.events()) {
    if (e.event == "admit") {
      open_admit[e.value] = e.cycle;
    } else if (e.event == "block.done") {
      const auto n = static_cast<std::size_t>(e.value);
      if (n >= out.size()) continue;  // not a modelled stream
      const auto it = open_admit.find(e.value);
      if (it != open_admit.end()) {
        ++out[n].blocks;
        out[n].max_service =
            std::max(out[n].max_service, e.cycle - it->second);
        open_admit.erase(it);
      }
      const auto prev = last_done.find(e.value);
      if (prev != last_done.end()) {
        const sim::Cycle gap = e.cycle - prev->second;
        if (gap < 2 * sbound[n])  // larger gaps = input starvation, not load
          out[n].max_spacing = std::max(out[n].max_spacing, gap);
      }
      last_done[e.value] = e.cycle;
    }
  }
  return out;
}

}  // namespace acc::sharing
