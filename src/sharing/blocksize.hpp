// Minimum block-size computation (paper Algorithm 1) and buffer-optimal
// block-size search (the branch-and-bound the paper sketches in §V-F).
//
// Given per-stream throughput requirements mu_s, find the smallest block
// sizes eta_s such that every stream still meets its throughput when all
// streams share the chain round-robin:
//
//   minimize   sum_s eta_s
//   subject to eta_s - c0 * mu_s * sum_i (eta_i + T) >= mu_s * sum_i R_i
//              eta_s >= 1, integer                     (Eq. 6-9)
//
// with c0 = max(epsilon, rho_A, delta) and T the pipeline tail. Two
// independent solvers are provided — the ILP of the paper (via our simplex +
// branch-and-bound) and an exact-rational least-fixed-point iteration — and
// must agree; the constraint system is monotone, so the least fixed point is
// component-wise minimal and hence also sum-minimal.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rational.hpp"
#include "sharing/spec.hpp"

namespace acc::df {
struct DseStats;  // dataflow/buffer_sizing.hpp
}

namespace acc::sharing {

struct BlockSizeResult {
  bool feasible = false;
  /// Minimum block sizes, one per stream.
  std::vector<std::int64_t> eta;
  std::int64_t total_eta = 0;
  /// Worst-case round duration gamma_hat at the solution.
  Time gamma = 0;
};

/// Solve Algorithm 1 with the MILP solver (paper's formulation).
[[nodiscard]] BlockSizeResult solve_block_sizes_ilp(const SharedSystemSpec& sys);

/// Solve the same system by Kleene iteration of
///   eta_s <- max(1, ceil(mu_s * (sum_i R_i + c0 * sum_i (eta_i + T))))
/// from eta = 1. Exact rational arithmetic; converges to the least fixed
/// point (the component-wise minimal feasible block sizes) whenever
/// utilization < 1.
[[nodiscard]] BlockSizeResult solve_block_sizes_fixpoint(
    const SharedSystemSpec& sys, std::int64_t max_iterations = 100000);

/// Real (LP) relaxation in closed form: eta_s = mu_s * X with
/// X = (sum R + c0*T*|S|) / (1 - c0*sum mu). Lower-bounds both solvers.
/// Returns empty when infeasible (utilization >= 1).
[[nodiscard]] std::vector<Rational> block_size_real_relaxation(
    const SharedSystemSpec& sys);

struct StreamBufferResult {
  bool feasible = false;
  std::int64_t alpha0 = 0;
  std::int64_t alpha3 = 0;
  [[nodiscard]] std::int64_t total() const { return alpha0 + alpha3; }
};

/// Minimum alpha0/alpha3 capacities (via the single-actor SDF abstraction of
/// paper Fig. 7) such that stream s sustains its sample rate, with the
/// producer emitting one sample per `sample_period` cycles, the shared actor
/// firing for gamma_hat cycles per eta-sample block, and the consumer
/// claiming `consumer_chunk` samples atomically per firing (1 = plain
/// sample-rate consumer; >1 = a downstream block consumer such as the next
/// gateway stream or a down-sampler — the Fig. 8 non-monotone case).
/// `jobs` is the DSE worker-thread count (results identical for any value);
/// `stats` optionally accumulates the engine counters.
[[nodiscard]] StreamBufferResult min_buffers_for_stream(
    const SharedSystemSpec& sys, std::size_t stream,
    const std::vector<std::int64_t>& etas, Time sample_period,
    std::int64_t consumer_chunk = 1, int jobs = 1,
    df::DseStats* stats = nullptr);

struct OptimalBlockResult {
  bool feasible = false;
  std::vector<std::int64_t> eta;
  std::vector<StreamBufferResult> buffers;  // per stream
  std::int64_t total_buffer = 0;
};

/// Exhaustive branch-and-bound over block-size vectors (from the Algorithm-1
/// minimum up to `eta_slack` extra samples per stream) minimizing the TOTAL
/// buffer capacity across streams. This implements the search the paper
/// describes as "a computationally intensive branch-and-bound algorithm";
/// the non-monotonicity of buffer sizes in eta (paper Fig. 8) is exactly why
/// minimal blocks need not give minimal buffers. `consumer_chunks` (empty =
/// all 1) gives each stream's downstream claim granularity.
[[nodiscard]] OptimalBlockResult optimal_blocks_for_buffers(
    const SharedSystemSpec& sys, const std::vector<Time>& sample_periods,
    std::int64_t eta_slack,
    const std::vector<std::int64_t>& consumer_chunks = {}, int jobs = 1,
    df::DseStats* stats = nullptr);

}  // namespace acc::sharing
