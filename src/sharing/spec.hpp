// Specification of a shared-accelerator system: one entry/exit gateway pair
// multiplexing a set of real-time streams over a chain of accelerators.
//
// This mirrors Section IV of the paper. The published case-study values are
// the defaults: accelerators and exit-gateway process 1 cycle/sample, the
// entry-gateway needs epsilon = 15 cycles/sample, reconfiguration takes
// R_s = 4100 cycles, and the accelerator network interfaces buffer
// alpha1 = alpha2 = 2 tokens.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rational.hpp"
#include "dataflow/graph.hpp"

namespace acc::sharing {

using df::Time;

/// One data stream multiplexed over the shared accelerator chain.
struct StreamSpec {
  std::string name;
  /// Minimum required throughput in samples per clock cycle (mu_s). E.g.
  /// 44.1 kS/s on a 100 MHz system is Rational(441, 1'000'000).
  Rational mu;
  /// Context-switch cost R_s in cycles (save + restore accelerator state).
  Time reconfig = 4100;
};

/// The shared chain of accelerators between one entry/exit gateway pair.
struct ChainSpec {
  /// Per-accelerator processing time in cycles/sample (rho_A), in chain
  /// order. The paper's case study uses 1 cycle/sample accelerators.
  std::vector<Time> accel_cycles_per_sample{1};
  /// Entry-gateway forwarding cost epsilon in cycles/sample.
  Time entry_cycles_per_sample = 15;
  /// Exit-gateway forwarding cost delta in cycles/sample.
  Time exit_cycles_per_sample = 1;
  /// Network-interface FIFO depth between gateways and accelerators
  /// (alpha1/alpha2 in the paper's Fig. 5): two tokens on the real hardware.
  std::int64_t ni_capacity = 2;

  [[nodiscard]] std::size_t num_accelerators() const {
    return accel_cycles_per_sample.size();
  }
};

/// Complete system: the chain plus every stream sharing it.
struct SharedSystemSpec {
  ChainSpec chain;
  std::vector<StreamSpec> streams;

  [[nodiscard]] std::size_t num_streams() const { return streams.size(); }

  void validate() const {
    ACC_EXPECTS_MSG(!streams.empty(), "system needs at least one stream");
    ACC_EXPECTS_MSG(!chain.accel_cycles_per_sample.empty(),
                    "chain needs at least one accelerator");
    for (Time rho : chain.accel_cycles_per_sample) ACC_EXPECTS(rho >= 1);
    ACC_EXPECTS(chain.entry_cycles_per_sample >= 1);
    ACC_EXPECTS(chain.exit_cycles_per_sample >= 1);
    ACC_EXPECTS(chain.ni_capacity >= 1);
    for (const StreamSpec& s : streams) {
      ACC_EXPECTS_MSG(s.mu > Rational(0), "stream '" + s.name +
                                              "' needs positive throughput");
      ACC_EXPECTS(s.reconfig >= 0);
    }
  }
};

}  // namespace acc::sharing
