// Max-plus formulation of the parameterized block schedule.
//
// The Fig. 6 pipeline recurrence
//   F_m(j) = d_m + max( F_{m-1}(j),        data from upstream
//                       F_m(j-1),          stage serialization
//                       F_{m+1}(j-alpha) ) credit back-pressure
// is linear in the (max, +) semiring, so one sample step is a constant
// matrix M on the state y(j) = (F(j), F(j-1), ..., F(j-alpha+1)):
// y(j) = M (x) y(j-1). This module builds M and the initial vector, from
// which everything in the paper's §V follows *algebraically*:
//   - completion(eta) = exact tau(eta) (cross-checked against the
//     closed-form schedule and the executed CSDF model),
//   - the max-plus eigenvalue of M is the per-sample cost — Eq. 2's slope
//     c0 as a spectral property,
//   - matrix cyclicity IS the "eventually affine in eta" fact that
//     sharing/parametric.hpp established empirically.
#pragma once

#include <optional>
#include <vector>

#include "dataflow/maxplus.hpp"
#include "sharing/spec.hpp"

namespace acc::sharing {

class MaxPlusChain {
 public:
  /// Exact completion time of a block of eta samples (pipeline idle, inputs
  /// ready — the Fig. 6 scenario).
  [[nodiscard]] Time completion(std::int64_t eta) const;

  /// Max-plus eigenvalue of the step matrix = asymptotic cycles/sample.
  [[nodiscard]] std::optional<Rational> eigenvalue() const;

  /// Cyclicity of the step matrix (proves the affine law and yields its
  /// period/growth).
  [[nodiscard]] std::optional<df::Cyclicity> cyclicity(
      std::int64_t max_power = 512) const;

  [[nodiscard]] const df::MaxPlusMatrix& step() const { return step_; }

  friend MaxPlusChain build_maxplus_chain(const SharedSystemSpec& sys,
                                          std::size_t stream);

 private:
  explicit MaxPlusChain(std::size_t state) : step_(state) {}

  df::MaxPlusMatrix step_;
  std::vector<df::MaxPlus> initial_;  // y(1): first sample through the chain
  std::size_t stages_ = 0;
};

/// Build the max-plus model of `stream`'s chain in `sys`.
[[nodiscard]] MaxPlusChain build_maxplus_chain(const SharedSystemSpec& sys,
                                               std::size_t stream);

}  // namespace acc::sharing
