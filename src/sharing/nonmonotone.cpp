#include "sharing/nonmonotone.hpp"

#include "dataflow/buffer_sizing.hpp"
#include "dataflow/dse.hpp"
#include "sharing/blocksize.hpp"

namespace acc::sharing {

namespace {

BufferSweepPoint sweep_point(df::Graph& g, const df::Channel& ch,
                             df::ActorId consumer, std::int64_t eta, int jobs,
                             df::DseStats* stats) {
  df::BufferSizingOptions opt;
  opt.max_capacity = std::max<std::int64_t>(64, 8 * eta);
  opt.jobs = jobs;
  // One engine for both questions: the saturation probes populate the memo
  // the minimum-capacity binary search then hits.
  df::DseEngine engine(g, {ch}, consumer, opt);
  BufferSweepPoint p;
  p.eta = eta;
  p.max_throughput = engine.max_throughput_unbounded();
  p.min_capacity =
      engine.min_capacity_for(0, engine.snapshot_capacities(),
                              p.max_throughput);
  if (stats) *stats += engine.stats();
  return p;
}

}  // namespace

std::vector<BufferSweepPoint> two_actor_buffer_sweep(
    Time producer_duration, Time consumer_duration, std::int64_t eta_lo,
    std::int64_t eta_hi, int jobs, df::DseStats* stats) {
  ACC_EXPECTS(eta_lo >= 1 && eta_hi >= eta_lo);
  std::vector<BufferSweepPoint> out;
  for (std::int64_t eta = eta_lo; eta <= eta_hi; ++eta) {
    df::Graph g;
    const df::ActorId a = g.add_sdf_actor("vA", producer_duration);
    const df::ActorId b = g.add_sdf_actor("vB", consumer_duration);
    const df::Channel ch = g.add_channel(a, b, {1}, {eta}, eta, 0, "alpha");
    out.push_back(sweep_point(g, ch, b, eta, jobs, stats));
  }
  return out;
}

std::vector<BufferSweepPoint> scaling_consumer_buffer_sweep(
    Time producer_duration, Time base, Time per_sample, std::int64_t eta_lo,
    std::int64_t eta_hi, int jobs, df::DseStats* stats) {
  ACC_EXPECTS(eta_lo >= 1 && eta_hi >= eta_lo);
  std::vector<BufferSweepPoint> out;
  for (std::int64_t eta = eta_lo; eta <= eta_hi; ++eta) {
    df::Graph g;
    const df::ActorId a = g.add_sdf_actor("vA", producer_duration);
    const df::ActorId b =
        g.add_sdf_actor("vB", base + per_sample * eta);
    const df::Channel ch = g.add_channel(a, b, {1}, {eta}, eta, 0, "alpha");
    out.push_back(sweep_point(g, ch, b, eta, jobs, stats));
  }
  return out;
}

std::vector<BufferSweepPoint> chunked_consumer_buffer_sweep(
    Time reconfig, Time per_sample, Time sample_period, std::int64_t chunk,
    std::int64_t eta_lo, std::int64_t eta_hi, int jobs, df::DseStats* stats) {
  ACC_EXPECTS(eta_lo >= 1 && eta_hi >= eta_lo);
  ACC_EXPECTS(chunk >= 1 && sample_period >= 1);
  std::vector<BufferSweepPoint> out;
  for (std::int64_t eta = eta_lo; eta <= eta_hi; ++eta) {
    df::Graph g;
    const df::ActorId s =
        g.add_sdf_actor("vS", reconfig + per_sample * eta);
    const df::ActorId c = g.add_sdf_actor("vC", chunk * sample_period);
    const df::Channel ch =
        g.add_channel(s, c, {eta}, {chunk}, std::max(eta, chunk), 0, "alpha");
    // Fixed target: the consumer must sustain one sample per sample_period,
    // i.e. 1/(chunk*period) firings per cycle.
    const Rational target = Rational(1, sample_period) / Rational(chunk);
    df::BufferSizingOptions opt;
    opt.max_capacity = 8 * eta + 8 * chunk + 64;
    opt.jobs = jobs;
    opt.stats = stats;
    BufferSweepPoint p;
    p.eta = eta;
    p.max_throughput = target;  // the sizing target, not the supremum
    try {
      p.min_capacity = df::min_channel_capacity_for_throughput(
          g, ch, c, target, opt);
    } catch (const invariant_error&) {
      p.min_capacity = -1;  // infeasible at this eta
    }
    out.push_back(p);
  }
  return out;
}

std::vector<GatewayBufferPoint> gateway_buffer_sweep(
    const SharedSystemSpec& sys, std::size_t stream, Time sample_period,
    std::int64_t eta_lo, std::int64_t eta_hi, int jobs, df::DseStats* stats) {
  ACC_EXPECTS(stream < sys.num_streams());
  const BlockSizeResult base = solve_block_sizes_fixpoint(sys);
  std::vector<GatewayBufferPoint> out;
  std::vector<std::int64_t> etas =
      base.feasible ? base.eta
                    : std::vector<std::int64_t>(sys.num_streams(), 1);
  for (std::int64_t eta = eta_lo; eta <= eta_hi; ++eta) {
    etas[stream] = eta;
    GatewayBufferPoint p;
    p.eta = eta;
    const StreamBufferResult r =
        min_buffers_for_stream(sys, stream, etas, sample_period,
                               /*consumer_chunk=*/1, jobs, stats);
    p.feasible = r.feasible;
    p.alpha0 = r.alpha0;
    p.alpha3 = r.alpha3;
    out.push_back(p);
  }
  return out;
}

bool is_non_monotone(const std::vector<std::int64_t>& values) {
  bool rose = false;
  bool fell = false;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[i - 1]) rose = true;
    if (values[i] < values[i - 1]) fell = true;
  }
  return rose && fell;
}

}  // namespace acc::sharing
