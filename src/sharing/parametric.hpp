// Parameterized schedule analysis: the block completion time as a closed
// function of the block size eta.
//
// The paper's §V argument is that MCM analysis cannot be used because eta
// stays a symbolic parameter, so instead "we construct a schedule that is
// parameterized in the block size". This module constructs that
// parameterization from the architecture: the exact completion tau(eta) of
// the Fig. 6 schedule is eventually AFFINE in eta,
//
//     tau(eta) = slope * eta + intercept      for eta >= eta_linear,
//
// with slope equal to the bottleneck stage cost c0 — the structural content
// of Eq. 2, derived rather than assumed. The initial (pipeline-fill)
// completions below eta_linear are tabulated exactly. Extrapolation
// exactness is verified at construction time against the closed-form
// schedule, so eval() is exact for every eta.
#pragma once

#include <cstdint>
#include <vector>

#include "sharing/analysis.hpp"
#include "sharing/spec.hpp"

namespace acc::sharing {

class ParametricCompletion {
 public:
  /// Exact completion time for any block size.
  [[nodiscard]] Time eval(std::int64_t eta) const;

  [[nodiscard]] Time slope() const { return slope_; }
  [[nodiscard]] Time intercept() const { return intercept_; }
  /// Smallest eta from which tau(eta) is exactly affine.
  [[nodiscard]] std::int64_t eta_linear() const { return eta_linear_; }

  friend ParametricCompletion parametric_block_completion(
      const SharedSystemSpec& sys, std::size_t stream);

 private:
  Time slope_ = 0;
  Time intercept_ = 0;
  std::int64_t eta_linear_ = 1;
  std::vector<Time> prefix_;  // exact tau for eta in [1, eta_linear)
};

/// Construct the parameterization for `stream` of `sys` (pipeline assumed
/// idle, inputs ready — the Fig. 6 scenario). Throws if the schedule never
/// becomes affine within a generous horizon (cannot happen for finite
/// chains; guards modelling bugs).
[[nodiscard]] ParametricCompletion parametric_block_completion(
    const SharedSystemSpec& sys, std::size_t stream);

}  // namespace acc::sharing
