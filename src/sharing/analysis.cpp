#include "sharing/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/checked.hpp"

namespace acc::sharing {

Time bottleneck_cycles_per_sample(const ChainSpec& chain) {
  Time c0 = std::max(chain.entry_cycles_per_sample,
                     chain.exit_cycles_per_sample);
  for (Time rho : chain.accel_cycles_per_sample) c0 = std::max(c0, rho);
  return c0;
}

std::int64_t pipeline_tail(const ChainSpec& chain) {
  return static_cast<std::int64_t>(chain.num_accelerators()) + 1;
}

Time tau_hat(const SharedSystemSpec& sys, std::size_t stream,
             std::int64_t eta) {
  ACC_EXPECTS(stream < sys.num_streams());
  ACC_EXPECTS(eta >= 1);
  // Eq. 2 assumes the double-buffered NI FIFOs of the paper's hardware
  // (alpha1 = alpha2 = 2). With single-slot FIFOs the blocked pipeline can
  // run slower than its bottleneck stage and the bound is NOT conservative
  // (see AnalysisProperty.SingleSlotNiBreaksEq2Bound).
  ACC_EXPECTS_MSG(sys.chain.ni_capacity >= 2,
                  "tau_hat (Eq. 2) requires NI FIFO capacity >= 2");
  const Time c0 = bottleneck_cycles_per_sample(sys.chain);
  // Checked: eta and R_s come straight from user configurations, and a
  // wrapped tau_hat would certify an infeasible system as admissible.
  return checked_add(
      sys.streams[stream].reconfig,
      checked_mul(checked_add(eta, pipeline_tail(sys.chain), "tau_hat"), c0,
                  "tau_hat"),
      "tau_hat (Eq. 2)");
}

Time s_hat(const SharedSystemSpec& sys, std::size_t stream,
           const std::vector<std::int64_t>& etas) {
  ACC_EXPECTS(etas.size() == sys.num_streams());
  Time total = 0;
  for (std::size_t i = 0; i < sys.num_streams(); ++i)
    if (i != stream)
      total = checked_add(total, tau_hat(sys, i, etas[i]), "s_hat (Eq. 3)");
  return total;
}

Time gamma_hat(const SharedSystemSpec& sys,
               const std::vector<std::int64_t>& etas) {
  ACC_EXPECTS(etas.size() == sys.num_streams());
  Time total = 0;
  for (std::size_t i = 0; i < sys.num_streams(); ++i)
    total = checked_add(total, tau_hat(sys, i, etas[i]), "gamma_hat (Eq. 4)");
  return total;
}

bool throughput_met(const SharedSystemSpec& sys,
                    const std::vector<std::int64_t>& etas) {
  const Time gamma = gamma_hat(sys, etas);
  for (std::size_t s = 0; s < sys.num_streams(); ++s) {
    // Eq. 5: eta_s / gamma >= mu_s.
    if (Rational(etas[s]) < sys.streams[s].mu * Rational(gamma)) return false;
  }
  return true;
}

Rational utilization(const SharedSystemSpec& sys) {
  Rational sum(0);
  for (const StreamSpec& s : sys.streams) sum += s.mu;
  return sum * Rational(bottleneck_cycles_per_sample(sys.chain));
}

Time worst_case_sample_latency(const SharedSystemSpec& sys,
                               std::size_t stream,
                               const std::vector<std::int64_t>& etas,
                               Time sample_period) {
  ACC_EXPECTS(stream < sys.num_streams());
  ACC_EXPECTS(etas.size() == sys.num_streams());
  ACC_EXPECTS(sample_period >= 1);
  return checked_add(
      checked_mul(etas[stream] - 1, sample_period, "worst_case_sample_latency"),
      gamma_hat(sys, etas), "worst_case_sample_latency");
}

BlockSchedule block_schedule(const SharedSystemSpec& sys, std::size_t stream,
                             std::int64_t eta) {
  ACC_EXPECTS(stream < sys.num_streams());
  ACC_EXPECTS(eta >= 1);
  const ChainSpec& chain = sys.chain;

  // Stage pipeline: G0 | A_0 .. A_{k-1} | G1. Stage names and durations.
  std::vector<std::string> names{"G0"};
  std::vector<Time> dur{chain.entry_cycles_per_sample};
  for (std::size_t a = 0; a < chain.num_accelerators(); ++a) {
    names.push_back("A" + std::to_string(a));
    dur.push_back(chain.accel_cycles_per_sample[a]);
  }
  names.emplace_back("G1");
  dur.push_back(chain.exit_cycles_per_sample);
  const std::size_t stages = dur.size();

  // finish[m][j]: completion time of sample j at stage m. Recurrence:
  //   start >= finish of previous sample at the same stage (serialization),
  //   start >= finish of the same sample upstream (data),
  //   start >= finish of sample j - ni_capacity downstream (credit
  //            flow-control back-pressure on the inter-tile FIFOs).
  std::vector<std::vector<Time>> finish(stages,
                                        std::vector<Time>(eta, 0));
  BlockSchedule out;
  out.entries.reserve(stages * static_cast<std::size_t>(eta));

  // Multiple passes settle the downstream back-pressure dependency; with a
  // forward sweep per sample index the dependencies are already resolved
  // because stage m's sample j-alpha downstream finish only involves earlier
  // sample indices.
  for (std::int64_t j = 0; j < eta; ++j) {
    for (std::size_t m = 0; m < stages; ++m) {
      Time start = 0;
      if (m == 0) {
        // Reconfiguration precedes the first sample through the entry-gateway.
        start = j == 0 ? sys.streams[stream].reconfig : finish[0][j - 1];
      } else {
        start = std::max(finish[m - 1][j], j > 0 ? finish[m][j - 1] : 0);
      }
      if (m + 1 < stages && j >= chain.ni_capacity) {
        start = std::max(start, finish[m + 1][j - chain.ni_capacity]);
      }
      finish[m][j] = start + dur[m];
      out.entries.push_back(ScheduleEntry{names[m], j, start, finish[m][j]});
    }
  }
  out.completion = finish[stages - 1][eta - 1];
  return out;
}

std::string render_gantt(const BlockSchedule& schedule, int width) {
  ACC_EXPECTS(width >= 16);
  if (schedule.entries.empty()) return "";
  Time t0 = schedule.entries.front().start;
  Time t1 = schedule.completion;
  for (const ScheduleEntry& e : schedule.entries) t0 = std::min(t0, e.start);
  const double scale =
      static_cast<double>(width) / static_cast<double>(std::max<Time>(1, t1 - t0));

  // Group rows by actor name, preserving pipeline order of first appearance.
  std::vector<std::string> order;
  std::map<std::string, std::string> rows;
  for (const ScheduleEntry& e : schedule.entries) {
    if (rows.find(e.actor) == rows.end()) {
      rows[e.actor] = std::string(static_cast<std::size_t>(width) + 1, ' ');
      order.push_back(e.actor);
    }
    auto& row = rows[e.actor];
    const int a = static_cast<int>(static_cast<double>(e.start - t0) * scale);
    int b = static_cast<int>(static_cast<double>(e.end - t0) * scale);
    b = std::max(b, a + 1);  // every firing at least one cell wide
    for (int x = a; x < b && x <= width; ++x) {
      // Alternate glyphs per sample index so adjacent firings stay visible.
      row[static_cast<std::size_t>(x)] = e.index % 2 == 0 ? '#' : '=';
    }
  }

  std::size_t label_w = 0;
  for (const std::string& name : order) label_w = std::max(label_w, name.size());
  std::ostringstream os;
  for (const std::string& name : order) {
    os << name << std::string(label_w - name.size(), ' ') << " |"
       << rows[name] << "|\n";
  }
  os << std::string(label_w, ' ') << " t=" << t0 << " .. " << t1 << " cycles\n";
  return os.str();
}

}  // namespace acc::sharing
