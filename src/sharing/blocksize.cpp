#include "sharing/blocksize.hpp"

#include <algorithm>
#include <functional>

#include "dataflow/buffer_sizing.hpp"
#include "ilp/model.hpp"
#include "sharing/analysis.hpp"
#include "sharing/sdf_model.hpp"

namespace acc::sharing {

namespace {

BlockSizeResult package(const SharedSystemSpec& sys,
                        std::vector<std::int64_t> etas) {
  BlockSizeResult r;
  r.feasible = true;
  r.eta = std::move(etas);
  for (std::int64_t e : r.eta) r.total_eta += e;
  r.gamma = gamma_hat(sys, r.eta);
  ACC_CHECK_MSG(throughput_met(sys, r.eta),
                "block-size solver returned an infeasible solution");
  return r;
}

}  // namespace

BlockSizeResult solve_block_sizes_ilp(const SharedSystemSpec& sys) {
  sys.validate();
  if (utilization(sys) >= Rational(1)) return {};

  const std::size_t n = sys.num_streams();
  const double c0 =
      static_cast<double>(bottleneck_cycles_per_sample(sys.chain));
  const double tail = static_cast<double>(pipeline_tail(sys.chain));
  double sum_r = 0.0;
  for (const StreamSpec& s : sys.streams)
    sum_r += static_cast<double>(s.reconfig);

  ilp::Model m;
  std::vector<ilp::VarId> eta;
  ilp::LinExpr objective;
  for (std::size_t s = 0; s < n; ++s) {
    eta.push_back(m.add_var("eta_" + sys.streams[s].name, 1.0, ilp::kInf,
                            /*integer=*/true));
    objective.add(eta.back(), 1.0);
  }
  m.set_objective(objective, ilp::Sense::kMinimize);

  // Eq. 6: eta_s - mu_s*c0*sum_i(eta_i) >= mu_s*(sum_i R_i + c0*T*|S|).
  for (std::size_t s = 0; s < n; ++s) {
    const double mu = sys.streams[s].mu.to_double();
    ilp::LinExpr lhs;
    for (std::size_t i = 0; i < n; ++i) {
      const double coef = (i == s ? 1.0 : 0.0) - mu * c0;
      lhs.add(eta[i], coef);
    }
    m.add_constraint(lhs, ilp::Rel::kGe,
                     mu * (sum_r + c0 * tail * static_cast<double>(n)));
  }

  const ilp::Solution sol = m.solve();
  if (!sol.optimal()) return {};
  std::vector<std::int64_t> etas(n);
  for (std::size_t s = 0; s < n; ++s)
    etas[s] = std::max<std::int64_t>(1, sol.value_int(eta[s]));
  // Floating-point constraints can round a boundary solution just below
  // exact-rational feasibility; repair with the monotone update (each pass
  // only raises etas, and utilization < 1 guarantees convergence).
  for (int pass = 0; pass < 1000 && !throughput_met(sys, etas); ++pass) {
    const Time gamma = gamma_hat(sys, etas);
    for (std::size_t s = 0; s < n; ++s) {
      const Rational need = sys.streams[s].mu * Rational(gamma);
      etas[s] = std::max(etas[s], need.ceil());
    }
  }
  return package(sys, std::move(etas));
}

BlockSizeResult solve_block_sizes_fixpoint(const SharedSystemSpec& sys,
                                           std::int64_t max_iterations) {
  sys.validate();
  if (utilization(sys) >= Rational(1)) return {};

  const std::size_t n = sys.num_streams();
  std::vector<std::int64_t> etas(n, 1);
  for (std::int64_t it = 0; it < max_iterations; ++it) {
    // eta_s <- max(1, ceil(mu_s * gamma_hat(etas))) — monotone, so Kleene
    // iteration from bottom converges to the least fixed point.
    const Time gamma = gamma_hat(sys, etas);
    bool changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      const std::int64_t next =
          std::max<std::int64_t>(1, (sys.streams[s].mu * Rational(gamma)).ceil());
      ACC_CHECK_MSG(next >= etas[s], "fixpoint iteration not monotone (bug)");
      changed |= next != etas[s];
      etas[s] = next;
    }
    if (!changed) return package(sys, std::move(etas));
  }
  throw invariant_error("block-size fixpoint did not converge within budget");
}

std::vector<Rational> block_size_real_relaxation(const SharedSystemSpec& sys) {
  sys.validate();
  const Rational util = utilization(sys);
  if (util >= Rational(1)) return {};
  const Rational c0(bottleneck_cycles_per_sample(sys.chain));
  const Rational tail(pipeline_tail(sys.chain));
  Rational sum_r(0);
  Rational sum_mu(0);
  for (const StreamSpec& s : sys.streams) {
    sum_r += Rational(s.reconfig);
    sum_mu += s.mu;
  }
  // X = gamma at the fixed point of the real system:
  // X = sum_r + c0*(sum_i eta_i + T*|S|) with eta_i = mu_i * X.
  const Rational num =
      sum_r + c0 * tail * Rational(static_cast<std::int64_t>(sys.num_streams()));
  const Rational x = num / (Rational(1) - c0 * sum_mu);
  std::vector<Rational> out;
  out.reserve(sys.num_streams());
  for (const StreamSpec& s : sys.streams) out.push_back(s.mu * x);
  return out;
}

StreamBufferResult min_buffers_for_stream(
    const SharedSystemSpec& sys, std::size_t stream,
    const std::vector<std::int64_t>& etas, Time sample_period,
    std::int64_t consumer_chunk, int jobs, df::DseStats* stats) {
  sys.validate();
  ACC_EXPECTS(stream < sys.num_streams());
  ACC_EXPECTS(etas.size() == sys.num_streams());
  ACC_EXPECTS(sample_period >= 1);
  ACC_EXPECTS(consumer_chunk >= 1);

  const std::int64_t eta = etas[stream];
  const Time gamma = gamma_hat(sys, etas);
  // The consumer sustains one sample per sample_period = one firing per
  // chunk * sample_period.
  const Rational target = Rational(1, sample_period) / Rational(consumer_chunk);
  StreamBufferResult out;
  // The abstract shared actor delivers eta samples per gamma cycles at most;
  // a faster sample period is structurally impossible.
  if (Rational(eta, gamma) < Rational(1, sample_period)) return out;

  SdfModelOptions opt;
  opt.eta = eta;
  opt.shared_duration = gamma;
  opt.producer_period = sample_period;
  opt.consumer_period = consumer_chunk * sample_period;
  opt.consumer_chunk = consumer_chunk;
  // Generous starting capacities; the searches below shrink them.
  const std::int64_t cap0 = 4 * eta + 8 * consumer_chunk + 4;
  opt.alpha0 = cap0;
  opt.alpha3 = cap0;
  SdfStreamModel model = build_sdf_stream_model(opt);

  df::BufferSizingOptions bopt;
  bopt.max_capacity = cap0;
  bopt.jobs = jobs;
  bopt.stats = stats;
  const df::MultiBufferResult res = df::minimize_total_capacity(
      model.graph, {model.input_buffer, model.output_buffer}, model.consumer,
      target, bopt);
  out.feasible = true;
  out.alpha0 = res.capacities[0];
  out.alpha3 = res.capacities[1];
  return out;
}

OptimalBlockResult optimal_blocks_for_buffers(
    const SharedSystemSpec& sys, const std::vector<Time>& sample_periods,
    std::int64_t eta_slack, const std::vector<std::int64_t>& consumer_chunks,
    int jobs, df::DseStats* stats) {
  sys.validate();
  ACC_EXPECTS(sample_periods.size() == sys.num_streams());
  ACC_EXPECTS(eta_slack >= 0);
  ACC_EXPECTS(consumer_chunks.empty() ||
              consumer_chunks.size() == sys.num_streams());
  const std::vector<std::int64_t> chunks =
      consumer_chunks.empty()
          ? std::vector<std::int64_t>(sys.num_streams(), 1)
          : consumer_chunks;

  const BlockSizeResult base = solve_block_sizes_fixpoint(sys);
  OptimalBlockResult best;
  if (!base.feasible) return best;

  const std::size_t n = sys.num_streams();
  std::vector<std::int64_t> etas(base.eta);
  std::function<void(std::size_t)> sweep = [&](std::size_t idx) {
    if (idx == n) {
      if (!throughput_met(sys, etas)) return;
      std::vector<StreamBufferResult> bufs(n);
      std::int64_t total = 0;
      for (std::size_t s = 0; s < n; ++s) {
        bufs[s] =
            min_buffers_for_stream(sys, s, etas, sample_periods[s], chunks[s],
                                   jobs, stats);
        if (!bufs[s].feasible) return;
        total += bufs[s].total();
      }
      if (!best.feasible || total < best.total_buffer) {
        best.feasible = true;
        best.eta = etas;
        best.buffers = std::move(bufs);
        best.total_buffer = total;
      }
      return;
    }
    for (std::int64_t e = base.eta[idx]; e <= base.eta[idx] + eta_slack; ++e) {
      etas[idx] = e;
      sweep(idx + 1);
    }
    etas[idx] = base.eta[idx];
  };
  sweep(0);
  return best;
}

}  // namespace acc::sharing
