// Conformance checking: does a RUNNING system obey its analysis model?
//
// The paper's guarantees are only as good as the implementation's
// conformance to the CSDF abstraction. This module closes that loop at
// runtime: feed it the entry-gateway event trace of a simulation (or, on
// real hardware, of an instrumented gateway) and it verifies, block by
// block, that
//   1. every block's service time (admit -> block.done) stays within
//      tau_hat + the notification latency (Eq. 2),
//   2. consecutive completions of the same stream stay within gamma_hat of
//      each other once the stream is backlogged (Eq. 4),
//   3. round-robin order is respected (no stream is served twice while
//      another admissible stream waits is approximated by: between two
//      services of stream s, every OTHER stream is served at most once).
#pragma once

#include <string>
#include <vector>

#include "sharing/spec.hpp"
#include "sim/trace.hpp"

namespace acc::sharing {

struct ConformanceViolation {
  std::string rule;     // "tau_hat", "gamma_spacing", "round_robin"
  std::string detail;
  sim::Cycle at = 0;
};

struct ConformanceReport {
  bool conforms = true;
  std::int64_t blocks_checked = 0;
  std::vector<ConformanceViolation> violations;
};

/// Check an entry-gateway trace against the analysis model. `etas` are the
/// configured block sizes (one per stream, indexed by trace stream id);
/// `slack` absorbs the exit-notification and interconnect latencies that
/// the abstract model does not account for.
[[nodiscard]] ConformanceReport check_conformance(
    const SharedSystemSpec& sys, const std::vector<std::int64_t>& etas,
    const sim::TraceLog& trace, sim::Cycle slack = 16);

}  // namespace acc::sharing
