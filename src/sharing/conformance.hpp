// Conformance checking: does a RUNNING system obey its analysis model?
//
// The paper's guarantees are only as good as the implementation's
// conformance to the CSDF abstraction. This module closes that loop at
// runtime: feed it the entry-gateway event trace of a simulation (or, on
// real hardware, of an instrumented gateway) and it verifies, block by
// block, that
//   1. every block's service time (admit -> block.done) stays within
//      tau_hat + the notification latency (Eq. 2),
//   2. consecutive completions of the same stream stay within gamma_hat of
//      each other once the stream is backlogged (Eq. 4),
//   3. round-robin order is respected (no stream is served twice while
//      another admissible stream waits is approximated by: between two
//      services of stream s, every OTHER stream is served at most once).
#pragma once

#include <string>
#include <vector>

#include "sharing/spec.hpp"
#include "sim/trace.hpp"

namespace acc::sharing {

struct ConformanceViolation {
  std::string rule;     // "tau_hat", "gamma_spacing", "round_robin"
  std::string detail;
  sim::Cycle at = 0;
  /// Cycles beyond the model bound (0 for rules without a cycle measure).
  sim::Cycle excess = 0;
  /// True when the excess fits inside the declared fault envelope
  /// (ConformanceOptions::fault_slack): the run misbehaved only as much as
  /// the injected faults permit, so the analysis is still conservative.
  bool covered_by_slack = false;
};

struct ConformanceReport {
  bool conforms = true;
  std::int64_t blocks_checked = 0;
  /// Violations whose excess is absorbed by the declared fault envelope.
  std::int64_t covered_by_slack = 0;
  /// Violations the fault envelope cannot explain: real bound breaches.
  std::int64_t genuine_breaches = 0;
  /// Largest admit -> block.done service time seen (violating or not).
  sim::Cycle max_service_observed = 0;
  /// Largest excess over a bound among violations (0 when none).
  sim::Cycle max_excess = 0;
  std::vector<ConformanceViolation> violations;
};

/// Knobs for the conformance check.
struct ConformanceOptions {
  /// Absorbs the exit-notification and interconnect latencies that the
  /// abstract model does not account for; part of the bound itself.
  sim::Cycle slack = 16;
  /// Declared per-block fault envelope (e.g. from
  /// sim::FaultInjector::worst_case_block_delay). Violations whose excess
  /// stays within it are classified covered-by-slack, not genuine. With
  /// fault_slack > 0 round-robin perturbations are also treated as covered,
  /// since bounded stalls may legally reorder admissibility windows.
  sim::Cycle fault_slack = 0;
};

/// Check an entry-gateway trace against the analysis model. `etas` are the
/// configured block sizes (one per stream, indexed by trace stream id).
/// `conforms` stays strict (any violation clears it); use the
/// covered_by_slack / genuine_breaches counters to judge runs with
/// injected faults.
[[nodiscard]] ConformanceReport check_conformance(
    const SharedSystemSpec& sys, const std::vector<std::int64_t>& etas,
    const sim::TraceLog& trace, const ConformanceOptions& opts);

/// Convenience overload with a default fault envelope of zero.
[[nodiscard]] ConformanceReport check_conformance(
    const SharedSystemSpec& sys, const std::vector<std::int64_t>& etas,
    const sim::TraceLog& trace, sim::Cycle slack = 16);

}  // namespace acc::sharing
