#include "sharing/bench_doc.hpp"

#include <chrono>

#include "common/thread_pool.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "sharing/blocksize.hpp"
#include "sharing/nonmonotone.hpp"

namespace acc::sharing {

DseWorkload DseWorkload::small() {
  DseWorkload w;
  w.sweep_eta_hi = 6;
  w.fast_period = 6;
  w.slow_period = 24;
  w.reconfig = 8;
  return w;
}

json::Object dse_run(const DseWorkload& w, int jobs) {
  df::DseStats stats;
  const auto t0 = std::chrono::steady_clock::now();

  (void)chunked_consumer_buffer_sweep(w.sweep_reconfig, w.sweep_per_sample,
                                      w.sweep_sample_period, w.sweep_chunk,
                                      w.sweep_eta_lo, w.sweep_eta_hi, jobs,
                                      &stats);
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"fast", Rational(1, w.fast_period), w.reconfig},
                 {"slow", Rational(1, w.slow_period), w.reconfig}};
  const BlockSizeResult blocks = solve_block_sizes_fixpoint(sys);
  for (std::size_t s = 0; s < sys.num_streams(); ++s) {
    const Time period = s == 0 ? w.fast_period : w.slow_period;
    (void)min_buffers_for_stream(sys, s, blocks.eta, period,
                                 /*consumer_chunk=*/1, jobs, &stats);
  }

  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  json::Object run;
  run["jobs"] = jobs;
  run["wall_ms"] = wall_ms;
  run["simulations"] = stats.simulations;
  run["cache_hits"] = stats.cache_hits;
  run["cache_misses"] = stats.cache_misses;
  run["cache_hit_rate"] = stats.cache_hit_rate();
  run["pruned_infeasible"] = stats.pruned_infeasible;
  run["pruned_feasible"] = stats.pruned_feasible;
  return run;
}

json::Value dse_bench_doc(json::Array runs) {
  json::Object doc;
  doc["bench"] = "dse";
  doc["hardware_threads"] =
      static_cast<std::int64_t>(ThreadPool::hardware_threads());
  doc["runs"] = std::move(runs);
  return json::Value(std::move(doc));
}

}  // namespace acc::sharing
