// The single-actor SDF abstraction of a shared chain (paper Fig. 7).
//
// The whole dashed box of the CSDF model (gateways + accelerators) collapses
// into one SDF actor vS with firing duration gamma_hat_s that consumes and
// produces eta_s tokens atomically. The paper proves (via the-earlier-the-
// better refinement) that throughput guarantees derived on this coarser
// model also hold for the CSDF model and the hardware.
#pragma once

#include <cstdint>

#include "dataflow/graph.hpp"
#include "sharing/spec.hpp"

namespace acc::sharing {

struct SdfModelOptions {
  std::int64_t eta = 1;
  std::int64_t alpha0 = 1;
  std::int64_t alpha3 = 1;
  Time producer_period = 1;
  Time consumer_period = 1;
  /// Firing duration of the abstract shared actor; use gamma_hat from
  /// analysis.hpp (or tau_hat + s_hat for a specific contention scenario).
  Time shared_duration = 1;
  /// Samples the consumer claims atomically per firing. 1 models a plain
  /// sample-rate consumer; >1 models a down-stream block consumer (e.g. the
  /// next gateway stream admitting blocks, or a down-sampler), the source
  /// of the paper's Fig. 8 non-monotonicity. consumer_period is per FIRING,
  /// so a rate-preserving chunked consumer has period chunk * sample_period.
  std::int64_t consumer_chunk = 1;
};

struct SdfStreamModel {
  df::Graph graph;
  df::ActorId producer = df::kInvalidActor;
  df::ActorId shared = df::kInvalidActor;  // vS
  df::ActorId consumer = df::kInvalidActor;
  df::Channel input_buffer{};   // alpha0
  df::Channel output_buffer{};  // alpha3
};

/// Build the Fig. 7 abstraction: vP -> [alpha0] -> vS -> [alpha3] -> vC.
[[nodiscard]] SdfStreamModel build_sdf_stream_model(const SdfModelOptions& opt);

}  // namespace acc::sharing
