// Construction of the per-stream CSDF temporal analysis model (paper Fig. 5).
//
// For each stream multiplexed over the shared chain, a separate CSDF graph
// conservatively models the hardware:
//
//   vP --[alpha0 buffer]--> vG0 --[NI]--> vA... --[NI]--> vG1 --> vC
//         ^                  ^  ^------------- idle token ----|
//         |                  '----- output-space edge from vC (alpha3)
//
//  - vG0 (entry-gateway) has eta phases. Phase 0 atomically claims the whole
//    block (eta input tokens), eta output-space tokens, and the
//    pipeline-idle token; its duration folds in the worst-case wait for
//    other streams (s_hat) plus reconfiguration R_s plus the per-sample
//    forwarding cost epsilon. Phases 1..eta-1 each forward one sample.
//  - vA actors (one per accelerator) are single-phase SDF actors.
//  - vG1 (exit-gateway) has eta phases; each delivers one sample to vC and
//    the last one returns the pipeline-idle token to vG0.
//  - NI channels have the hardware FIFO depth (alpha1 = alpha2 = 2).
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/graph.hpp"
#include "sharing/spec.hpp"

namespace acc::sharing {

struct CsdfModelOptions {
  /// Block size eta_s for the modelled stream.
  std::int64_t eta = 1;
  /// Input buffer capacity between producer and entry-gateway (alpha0).
  std::int64_t alpha0 = 1;
  /// Output buffer capacity between exit-gateway and consumer (alpha3).
  std::int64_t alpha3 = 1;
  /// Producer firing duration rho_P (cycles per produced sample).
  Time producer_period = 1;
  /// Consumer firing duration rho_C (cycles per consumed sample).
  Time consumer_period = 1;
  /// Worst-case wait for other streams, folded into vG0's first phase
  /// (s_hat_s; 0 models an otherwise-idle pipeline as in paper Fig. 6).
  Time contention = 0;
};

/// Handles into the generated graph.
struct CsdfStreamModel {
  df::Graph graph;
  df::ActorId producer = df::kInvalidActor;
  df::ActorId entry = df::kInvalidActor;
  std::vector<df::ActorId> accelerators;
  df::ActorId exit = df::kInvalidActor;
  df::ActorId consumer = df::kInvalidActor;

  /// alpha0: producer -> entry data edge + entry -> producer space edge.
  df::Channel input_buffer{};
  /// Data half of alpha3: exit -> consumer.
  df::EdgeId output_data = -1;
  /// Space half of alpha3: consumer -> ENTRY (the paper's output-space
  /// check happens at block admission, not at the exit-gateway).
  df::EdgeId output_space = -1;
  /// Pipeline-idle token: exit -> entry, one initial token.
  df::EdgeId idle_edge = -1;
  /// NI channels along the chain (entry->A0, A0->A1, ..., Ak-1->exit).
  std::vector<df::Channel> ni_channels;
};

/// Build the Fig. 5 CSDF model of `stream` within `sys`.
[[nodiscard]] CsdfStreamModel build_csdf_stream_model(
    const SharedSystemSpec& sys, std::size_t stream,
    const CsdfModelOptions& opt);

}  // namespace acc::sharing
