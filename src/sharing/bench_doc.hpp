// Machine-readable benchmark documents. The DSE perf-trajectory workload
// and its BENCH_dse.json document live here (instead of inside
// bench_perf_analysis) so the golden-schema tests exercise the exact code
// the bench ships, on a workload scaled down to test size.
#pragma once

#include <cstdint>

#include "common/json.hpp"

namespace acc::sharing {

/// Scale of one DSE workload run: the chunked-consumer Fig. 8 sweep plus
/// the two-stream gateway buffer sizing. Defaults reproduce the historical
/// bench_perf_analysis workload; tests shrink eta_hi / the stream periods.
struct DseWorkload {
  // chunked_consumer_buffer_sweep(reconfig, per_sample, sample_period,
  // chunk, eta_lo, eta_hi, ...)
  std::int64_t sweep_reconfig = 6;
  std::int64_t sweep_per_sample = 1;
  std::int64_t sweep_sample_period = 3;
  std::int64_t sweep_chunk = 4;
  std::int64_t sweep_eta_lo = 3;
  std::int64_t sweep_eta_hi = 16;
  // Two-stream gateway system whose buffers are then sized.
  std::int64_t fast_period = 8;
  std::int64_t slow_period = 64;
  std::int64_t reconfig = 20;

  /// A miniature workload for schema/determinism tests (< 100 ms).
  [[nodiscard]] static DseWorkload small();
};

/// Execute the workload once with `jobs` DSE workers and return the
/// per-run JSON object: {jobs, wall_ms, simulations, cache_hits,
/// cache_misses, cache_hit_rate, pruned_infeasible, pruned_feasible}.
[[nodiscard]] json::Object dse_run(const DseWorkload& w, int jobs);

/// Assemble the BENCH_dse.json document from per-run objects:
/// {bench: "dse", hardware_threads, runs: [...]}. Validated by
/// common/bench_schema.hpp.
[[nodiscard]] json::Value dse_bench_doc(json::Array runs);

}  // namespace acc::sharing
