#include "sharing/conformance.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "sharing/analysis.hpp"

namespace acc::sharing {

ConformanceReport check_conformance(const SharedSystemSpec& sys,
                                    const std::vector<std::int64_t>& etas,
                                    const sim::TraceLog& trace,
                                    const ConformanceOptions& opts) {
  sys.validate();
  ACC_EXPECTS(etas.size() == sys.num_streams());

  ConformanceReport rep;
  const Time gamma = gamma_hat(sys, etas);
  const sim::Cycle slack = opts.slack;

  // Eq. 4 applies to backlogged streams: a stream whose inputs arrive at
  // rate mu cannot complete blocks faster than eta/mu, so the conforming
  // spacing is the larger of the round bound and that input-limited period.
  std::vector<Time> spacing_bound(sys.num_streams(), gamma);
  for (std::size_t s = 0; s < sys.num_streams(); ++s) {
    const Time input_limited =
        (Rational(etas[s]) / sys.streams[s].mu).ceil();
    spacing_bound[s] = std::max(gamma, input_limited);
  }

  // `cover_limit` is the largest excess the declared fault envelope can
  // explain for the violated rule; 0 means any violation is genuine.
  auto violate = [&](const char* rule, sim::Cycle at, const std::string& d,
                     sim::Cycle excess, sim::Cycle cover_limit) {
    rep.conforms = false;
    const bool covered = excess > 0 ? excess <= cover_limit
                                    : cover_limit > 0;
    if (covered)
      rep.covered_by_slack++;
    else
      rep.genuine_breaches++;
    if (excess > rep.max_excess) rep.max_excess = excess;
    rep.violations.push_back(ConformanceViolation{rule, d, at, excess,
                                                  covered});
  };
  // One round holds a block of every stream, each inflatable by the
  // per-block envelope, so spacing may drift num_streams times further.
  const sim::Cycle round_cover =
      opts.fault_slack * static_cast<sim::Cycle>(sys.num_streams());

  // Pair admits with completions per stream and check each service window.
  std::map<std::int64_t, sim::Cycle> open_admit;  // stream -> admit time
  std::map<std::int64_t, sim::Cycle> last_done;   // stream -> last done
  // since_last[v][w]: services of w since v's own last service. Heuristic
  // RR rule: between two consecutive services of v, no other stream is
  // served twice. (A starved v could legitimately relax this; the
  // admission-gated gateways of this library keep backlogged streams
  // admissible, so the rule holds on conforming traces.)
  std::map<std::int64_t, std::map<std::int64_t, std::int64_t>> since_last;

  for (const sim::TraceEvent& e : trace.events()) {
    if (e.event == "admit") {
      open_admit[e.value] = e.cycle;
      for (const auto& [other, count] : since_last[e.value]) {
        if (count > 1) {
          std::ostringstream os;
          os << "stream " << other << " served " << count
             << " times between services of stream " << e.value;
          violate("round_robin", e.cycle, os.str(), 0, opts.fault_slack);
        }
      }
      since_last[e.value].clear();
      for (auto& [v, counts] : since_last)
        if (v != e.value) ++counts[e.value];
    } else if (e.event == "block.done") {
      rep.blocks_checked++;
      const auto it = open_admit.find(e.value);
      if (it == open_admit.end()) {
        violate("tau_hat", e.cycle, "completion without a matching admit",
                0, 0);
        continue;
      }
      // Eq. 2: service time of one block once the gateway turned to it.
      const Time bound =
          tau_hat(sys, static_cast<std::size_t>(e.value),
                  etas[static_cast<std::size_t>(e.value)]) + slack;
      const sim::Cycle service = e.cycle - it->second;
      if (service > rep.max_service_observed)
        rep.max_service_observed = service;
      if (service > bound) {
        std::ostringstream os;
        os << "stream " << e.value << " block served in " << service
           << " > tau_hat+slack " << bound;
        violate("tau_hat", e.cycle, os.str(), service - bound,
                opts.fault_slack);
      }
      open_admit.erase(it);
      // Eq. 4: completions of a backlogged stream no farther apart than a
      // full round. (Only meaningful when the stream was immediately
      // re-admittable; a conservative check uses gamma + slack and skips
      // gaps larger than 2*gamma, which indicate input starvation instead.)
      const auto prev = last_done.find(e.value);
      if (prev != last_done.end()) {
        const Time sbound = spacing_bound[static_cast<std::size_t>(e.value)];
        const sim::Cycle gap = e.cycle - prev->second;
        if (gap > sbound + slack && gap < 2 * sbound) {
          std::ostringstream os;
          os << "stream " << e.value << " completion gap " << gap
             << " exceeds spacing bound+slack " << (sbound + slack);
          violate("gamma_spacing", e.cycle, os.str(), gap - (sbound + slack),
                  round_cover);
        }
      }
      last_done[e.value] = e.cycle;
    }
  }
  return rep;
}

ConformanceReport check_conformance(const SharedSystemSpec& sys,
                                    const std::vector<std::int64_t>& etas,
                                    const sim::TraceLog& trace,
                                    sim::Cycle slack) {
  ConformanceOptions opts;
  opts.slack = slack;
  return check_conformance(sys, etas, trace, opts);
}

}  // namespace acc::sharing
