#include "sharing/conformance.hpp"

#include <map>
#include <sstream>

#include "sharing/analysis.hpp"

namespace acc::sharing {

ConformanceReport check_conformance(const SharedSystemSpec& sys,
                                    const std::vector<std::int64_t>& etas,
                                    const sim::TraceLog& trace,
                                    sim::Cycle slack) {
  sys.validate();
  ACC_EXPECTS(etas.size() == sys.num_streams());

  ConformanceReport rep;
  const Time gamma = gamma_hat(sys, etas);

  auto violate = [&](const char* rule, sim::Cycle at, const std::string& d) {
    rep.conforms = false;
    rep.violations.push_back(ConformanceViolation{rule, d, at});
  };

  // Pair admits with completions per stream and check each service window.
  std::map<std::int64_t, sim::Cycle> open_admit;  // stream -> admit time
  std::map<std::int64_t, sim::Cycle> last_done;   // stream -> last done
  // since_last[v][w]: services of w since v's own last service. Heuristic
  // RR rule: between two consecutive services of v, no other stream is
  // served twice. (A starved v could legitimately relax this; the
  // admission-gated gateways of this library keep backlogged streams
  // admissible, so the rule holds on conforming traces.)
  std::map<std::int64_t, std::map<std::int64_t, std::int64_t>> since_last;

  for (const sim::TraceEvent& e : trace.events()) {
    if (e.event == "admit") {
      open_admit[e.value] = e.cycle;
      for (const auto& [other, count] : since_last[e.value]) {
        if (count > 1) {
          std::ostringstream os;
          os << "stream " << other << " served " << count
             << " times between services of stream " << e.value;
          violate("round_robin", e.cycle, os.str());
        }
      }
      since_last[e.value].clear();
      for (auto& [v, counts] : since_last)
        if (v != e.value) ++counts[e.value];
    } else if (e.event == "block.done") {
      rep.blocks_checked++;
      const auto it = open_admit.find(e.value);
      if (it == open_admit.end()) {
        violate("tau_hat", e.cycle, "completion without a matching admit");
        continue;
      }
      // Eq. 2: service time of one block once the gateway turned to it.
      const Time bound =
          tau_hat(sys, static_cast<std::size_t>(e.value),
                  etas[static_cast<std::size_t>(e.value)]) + slack;
      const sim::Cycle service = e.cycle - it->second;
      if (service > bound) {
        std::ostringstream os;
        os << "stream " << e.value << " block served in " << service
           << " > tau_hat+slack " << bound;
        violate("tau_hat", e.cycle, os.str());
      }
      open_admit.erase(it);
      // Eq. 4: completions of a backlogged stream no farther apart than a
      // full round. (Only meaningful when the stream was immediately
      // re-admittable; a conservative check uses gamma + slack and skips
      // gaps larger than 2*gamma, which indicate input starvation instead.)
      const auto prev = last_done.find(e.value);
      if (prev != last_done.end()) {
        const sim::Cycle gap = e.cycle - prev->second;
        if (gap > gamma + slack && gap < 2 * gamma) {
          std::ostringstream os;
          os << "stream " << e.value << " completion gap " << gap
             << " exceeds gamma_hat+slack " << (gamma + slack);
          violate("gamma_spacing", e.cycle, os.str());
        }
      }
      last_done[e.value] = e.cycle;
    }
  }
  return rep;
}

}  // namespace acc::sharing
