// Design-report generation: one call turns a SharedSystemSpec into the
// complete analysis a designer needs — schedulability, Algorithm-1 block
// sizes (both solvers), worst-case round, per-stream bounds, buffer
// capacities and the derived completion law — rendered as markdown.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sharing/blocksize.hpp"
#include "sharing/parametric.hpp"
#include "sharing/spec.hpp"

namespace acc::sharing {

struct ReportOptions {
  /// Per-stream sample periods (cycles) used for buffer sizing; empty =
  /// derive from mu as floor(1/mu) (exact when mu is a unit fraction).
  std::vector<Time> sample_periods;
  /// Per-stream downstream claim granularity; empty = all 1.
  std::vector<std::int64_t> consumer_chunks;
  /// Skip the (comparatively expensive) buffer computation.
  bool size_buffers = true;
};

struct StreamReport {
  std::string name;
  Rational mu;
  std::int64_t eta = 0;
  Time tau_hat = 0;   // Eq. 2 bound on the block
  Time s_hat = 0;     // worst-case wait for other streams
  Rational guaranteed_rate;  // eta / gamma
  std::optional<StreamBufferResult> buffers;
};

struct SystemReport {
  bool schedulable = false;
  Rational utilization;
  Time gamma = 0;
  bool solvers_agree = false;
  std::vector<StreamReport> streams;
  /// Derived completion law tau(eta) = slope*eta + intercept (stream 0's
  /// chain — identical for all streams up to R_s).
  Time law_slope = 0;
  Time law_intercept = 0;

  /// Render as a markdown document.
  [[nodiscard]] std::string to_markdown(const SharedSystemSpec& sys) const;
};

/// Run the full analysis pipeline.
[[nodiscard]] SystemReport analyze_system(const SharedSystemSpec& sys,
                                          const ReportOptions& opt = {});

}  // namespace acc::sharing
