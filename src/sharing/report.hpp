// Design-report generation: one call turns a SharedSystemSpec into the
// complete analysis a designer needs — schedulability, Algorithm-1 block
// sizes (both solvers), worst-case round, per-stream bounds, buffer
// capacities and the derived completion law — rendered as markdown.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sharing/blocksize.hpp"
#include "sharing/parametric.hpp"
#include "sharing/spec.hpp"
#include "sim/trace.hpp"

namespace acc::sharing {

struct ReportOptions {
  /// Per-stream sample periods (cycles) used for buffer sizing; empty =
  /// derive from mu as floor(1/mu) (exact when mu is a unit fraction).
  std::vector<Time> sample_periods;
  /// Per-stream downstream claim granularity; empty = all 1.
  std::vector<std::int64_t> consumer_chunks;
  /// Skip the (comparatively expensive) buffer computation.
  bool size_buffers = true;
};

struct StreamReport {
  std::string name;
  Rational mu;
  std::int64_t eta = 0;
  Time tau_hat = 0;   // Eq. 2 bound on the block
  Time s_hat = 0;     // worst-case wait for other streams
  Rational guaranteed_rate;  // eta / gamma
  std::optional<StreamBufferResult> buffers;
};

struct SystemReport {
  bool schedulable = false;
  Rational utilization;
  Time gamma = 0;
  bool solvers_agree = false;
  std::vector<StreamReport> streams;
  /// Derived completion law tau(eta) = slope*eta + intercept (stream 0's
  /// chain — identical for all streams up to R_s).
  Time law_slope = 0;
  Time law_intercept = 0;

  /// Render as a markdown document.
  [[nodiscard]] std::string to_markdown(const SharedSystemSpec& sys) const;
};

/// Run the full analysis pipeline.
[[nodiscard]] SystemReport analyze_system(const SharedSystemSpec& sys,
                                          const ReportOptions& opt = {});

/// Observed per-stream maxima extracted from an entry-gateway trace, joined
/// against the analytic bounds the conformance checker enforces. The
/// definitions are exactly check_conformance's (so a conforming fault-free
/// run always shows observed <= bound):
///   service: admit -> block.done, bound = tau_hat + slack (Eq. 2);
///   spacing: gap between consecutive block.done of one stream, bound =
///     max(gamma_hat, ceil(eta/mu)) + slack (Eq. 4), gaps >= 2x the raw
///     bound excluded as input starvation rather than contention.
struct ObservedStream {
  std::int64_t blocks = 0;         // completed blocks seen in the trace
  sim::Cycle max_service = -1;     // -1 = no completed block observed
  sim::Cycle max_spacing = -1;     // -1 = fewer than two completions
  sim::Cycle service_bound = 0;    // tau_hat + slack
  sim::Cycle spacing_bound = 0;    // spacing bound + slack
};

/// One ObservedStream per stream of `sys`, indexed by trace stream id.
[[nodiscard]] std::vector<ObservedStream> observe_streams(
    const SharedSystemSpec& sys, const std::vector<std::int64_t>& etas,
    const sim::TraceLog& trace, sim::Cycle slack = 16);

}  // namespace acc::sharing
