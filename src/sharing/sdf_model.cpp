#include "sharing/sdf_model.hpp"

namespace acc::sharing {

SdfStreamModel build_sdf_stream_model(const SdfModelOptions& opt) {
  ACC_EXPECTS(opt.eta >= 1);
  ACC_EXPECTS(opt.consumer_chunk >= 1);
  ACC_EXPECTS_MSG(opt.alpha0 >= opt.eta &&
                      opt.alpha3 >= std::max(opt.eta, opt.consumer_chunk),
                  "buffers must hold at least one block");
  ACC_EXPECTS(opt.shared_duration >= 0);

  SdfStreamModel m;
  df::Graph& g = m.graph;
  m.producer = g.add_sdf_actor("vP", opt.producer_period);
  m.shared = g.add_sdf_actor("vS", opt.shared_duration);
  m.consumer = g.add_sdf_actor("vC", opt.consumer_period);

  m.input_buffer = g.add_channel(m.producer, m.shared, {1}, {opt.eta},
                                 opt.alpha0, 0, "alpha0");
  m.output_buffer =
      g.add_channel(m.shared, m.consumer, {opt.eta}, {opt.consumer_chunk},
                    opt.alpha3, 0, "alpha3");
  g.validate();
  return m;
}

}  // namespace acc::sharing
