#include "sharing/serialize.hpp"

namespace acc::sharing {

json::Value spec_to_json(const SharedSystemSpec& sys) {
  json::Object chain;
  json::Array accels;
  for (Time rho : sys.chain.accel_cycles_per_sample) accels.emplace_back(rho);
  chain["accelerators"] = std::move(accels);
  chain["entry"] = sys.chain.entry_cycles_per_sample;
  chain["exit"] = sys.chain.exit_cycles_per_sample;
  chain["ni_capacity"] = sys.chain.ni_capacity;

  json::Array streams;
  for (const StreamSpec& s : sys.streams) {
    json::Object o;
    o["name"] = s.name;
    o["mu_num"] = s.mu.num();
    o["mu_den"] = s.mu.den();
    o["reconfig"] = s.reconfig;
    streams.emplace_back(std::move(o));
  }

  json::Object root;
  root["chain"] = std::move(chain);
  root["streams"] = std::move(streams);
  return root;
}

SharedSystemSpec spec_from_json(const json::Value& v) {
  SharedSystemSpec sys;
  const json::Value& chain = v.at("chain");
  sys.chain.accel_cycles_per_sample.clear();
  for (const json::Value& a : chain.at("accelerators").as_array())
    sys.chain.accel_cycles_per_sample.push_back(a.as_int());
  sys.chain.entry_cycles_per_sample = chain.at("entry").as_int();
  sys.chain.exit_cycles_per_sample = chain.at("exit").as_int();
  if (const json::Value* ni = chain.find("ni_capacity"))
    sys.chain.ni_capacity = ni->as_int();

  for (const json::Value& sv : v.at("streams").as_array()) {
    StreamSpec s;
    s.name = sv.at("name").as_string();
    s.mu = Rational(sv.at("mu_num").as_int(), sv.at("mu_den").as_int());
    s.reconfig = sv.at("reconfig").as_int();
    sys.streams.push_back(std::move(s));
  }
  sys.validate();
  return sys;
}

std::string spec_to_string(const SharedSystemSpec& sys) {
  return spec_to_json(sys).pretty();
}

SharedSystemSpec spec_from_string(const std::string& text) {
  return spec_from_json(json::parse_or_throw(text));
}

}  // namespace acc::sharing
