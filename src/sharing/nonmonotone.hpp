// Non-monotone behaviour of minimum buffer capacities in the block size
// (paper §V-E, Fig. 8).
//
// The paper demonstrates with a two-actor model that the minimum buffer
// capacity needed to reach maximum throughput is NOT monotone in the block
// size eta: a larger block can need a *smaller* buffer, because the maximum
// achievable throughput itself changes with eta. This module provides the
// sweep machinery for both
//   (a) the paper's stand-alone two-actor model (our reconstruction of
//       Fig. 8a — the original's exact quanta are not recoverable from the
//       published figure), and
//   (b) the real gateway system: minimum alpha0/alpha3 as a function of eta
//       via the Fig. 7 abstraction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rational.hpp"
#include "sharing/spec.hpp"

namespace acc::df {
struct DseStats;  // dataflow/buffer_sizing.hpp
}

namespace acc::sharing {

/// One row of a Fig. 8(b)-style table.
struct BufferSweepPoint {
  std::int64_t eta = 0;
  /// Maximum achievable consumer throughput at this eta (samples/cycle).
  Rational max_throughput;
  /// Minimum channel capacity that reaches max_throughput.
  std::int64_t min_capacity = 0;
};

/// Two-actor model: vA (duration `producer_duration`) produces one token per
/// firing into a bounded channel; vB (duration `consumer_duration`) consumes
/// eta tokens per firing. For each eta in [eta_lo, eta_hi], compute the
/// maximum throughput and the minimal capacity achieving it. All sweeps in
/// this module take a DSE worker-thread count `jobs` (results identical for
/// any value) and an optional `stats` accumulator for the engine counters.
[[nodiscard]] std::vector<BufferSweepPoint> two_actor_buffer_sweep(
    Time producer_duration, Time consumer_duration, std::int64_t eta_lo,
    std::int64_t eta_hi, int jobs = 1, df::DseStats* stats = nullptr);

/// Like above but with a consumer whose duration scales with the block:
/// vB takes `base + per_sample * eta` cycles per firing — the shape of the
/// paper's shared actor (reconfiguration + pipelined block, Eq. 2).
[[nodiscard]] std::vector<BufferSweepPoint> scaling_consumer_buffer_sweep(
    Time producer_duration, Time base, Time per_sample, std::int64_t eta_lo,
    std::int64_t eta_hi, int jobs = 1, df::DseStats* stats = nullptr);

/// The non-monotone case (our Fig. 8 reproduction): the shared actor
/// (duration reconfig + per_sample*eta, paper Eq. 2) delivers blocks of eta
/// samples into a buffer drained by a DOWN-SAMPLING consumer that consumes
/// `chunk` samples per firing (duration chunk * sample_period) — the shape
/// of the paper's chain-end streams feeding the 8:1 LPF+down-sampler. When
/// eta is not aligned with `chunk`, block remainders linger in the buffer,
/// so a *smaller* block size can require a *larger* minimum buffer. The
/// sweep sizes the buffer for the fixed target rate 1/sample_period.
[[nodiscard]] std::vector<BufferSweepPoint> chunked_consumer_buffer_sweep(
    Time reconfig, Time per_sample, Time sample_period, std::int64_t chunk,
    std::int64_t eta_lo, std::int64_t eta_hi, int jobs = 1,
    df::DseStats* stats = nullptr);

/// One row of the gateway-system sweep: minimum alpha0+alpha3 for stream
/// `stream` when its block size is forced to eta (other streams at their
/// Algorithm-1 minima).
struct GatewayBufferPoint {
  std::int64_t eta = 0;
  bool feasible = false;
  std::int64_t alpha0 = 0;
  std::int64_t alpha3 = 0;
  [[nodiscard]] std::int64_t total() const { return alpha0 + alpha3; }
};

[[nodiscard]] std::vector<GatewayBufferPoint> gateway_buffer_sweep(
    const SharedSystemSpec& sys, std::size_t stream, Time sample_period,
    std::int64_t eta_lo, std::int64_t eta_hi, int jobs = 1,
    df::DseStats* stats = nullptr);

/// True iff the min_capacity sequence both rises and falls somewhere —
/// the paper's headline observation.
[[nodiscard]] bool is_non_monotone(const std::vector<std::int64_t>& values);

}  // namespace acc::sharing
