// Deterministic metrics registry for the MPSoC simulator (the observability
// counterpart to PR4's static-analysis layer; see docs/observability.md).
//
// Three primitives — counters, gauges and fixed-bucket histograms — behind
// stable string IDs. Components pre-register handles once at wiring time
// (the only place a map lookup happens) and update through the handle on
// the hot path: one null check plus one or two integer stores, no
// allocation, no lookup. A component that was never given a registry holds
// null handles, and every update compiles down to a predictable
// not-taken branch — the opt-out path costs nothing measurable.
//
// Determinism contract: every update is driven by a simulation EVENT (a
// push, a pop, an injection, an admission, a fault trigger), never by "one
// tick happened". Events occur at identical cycles under all three steppers
// (kDense / kGlobalHorizon / kWakeList) — that is the equivalence property
// the stepper suite proves — so a snapshot of the registry is bit-identical
// across steppers and, because each simulation owns its registry, across
// --jobs values. tests/obs/metrics_equivalence_test.cpp locks this down.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace acc::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

/// Storage for one metric. Handles point at a cell; cells live in a deque
/// so registration never invalidates previously returned handles.
struct MetricCell {
  MetricKind kind = MetricKind::kCounter;
  std::string id;
  /// Counter: running total. Gauge: last set value.
  std::int64_t value = 0;
  /// Gauge/histogram: maximum ever set/observed (0 before any sample).
  std::int64_t max = 0;
  /// Histogram only: upper bucket bounds (strictly increasing); counts has
  /// bounds.size() + 1 entries, the last being the overflow bucket.
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t count = 0;  // histogram: number of observations
  std::int64_t sum = 0;    // histogram: sum of observed values
};

/// Monotone counter handle. Null handle = no-op.
class Counter {
 public:
  Counter() = default;
  void add(std::int64_t n = 1) {
    if (cell_ != nullptr) cell_->value += n;
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(MetricCell* cell) : cell_(cell) {}
  MetricCell* cell_ = nullptr;
};

/// Last-value gauge that also tracks its maximum. Null handle = no-op.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if (cell_ == nullptr) return;
    cell_->value = v;
    if (v > cell_->max) cell_->max = v;
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(MetricCell* cell) : cell_(cell) {}
  MetricCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. Bucket search is a short linear scan over
/// the pre-registered bounds (observability histograms here have <= 8
/// buckets; a binary search would cost more in branches than it saves).
class Histogram {
 public:
  Histogram() = default;
  void observe(std::int64_t v) {
    if (cell_ == nullptr) return;
    std::size_t b = 0;
    while (b < cell_->bounds.size() && v > cell_->bounds[b]) ++b;
    ++cell_->counts[b];
    ++cell_->count;
    cell_->sum += v;
    if (v > cell_->max) cell_->max = v;
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(MetricCell* cell) : cell_(cell) {}
  MetricCell* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register a metric under a unique stable ID (cold path; wiring time
  /// only). Duplicate IDs are precondition errors — two components must
  /// never share a cell by accident.
  Counter counter(std::string id);
  Gauge gauge(std::string id);
  /// `bounds` are strictly increasing upper bucket bounds; an implicit
  /// overflow bucket catches everything beyond the last bound.
  Histogram histogram(std::string id, std::vector<std::int64_t> bounds);

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  /// Read access for report builders; nullptr when the ID is unknown.
  [[nodiscard]] const MetricCell* find(std::string_view id) const;

  /// Canonical snapshot, one line per metric, sorted by ID. Two registries
  /// with equal snapshots observed bit-identical event streams — this is
  /// the string the differential suite compares.
  [[nodiscard]] std::string snapshot_text() const;
  /// The same snapshot as a JSON object keyed by metric ID (std::map keeps
  /// the key order canonical) — embedded in RunReport documents.
  [[nodiscard]] json::Value snapshot_json() const;

 private:
  MetricCell* insert(MetricKind kind, std::string id);

  std::deque<MetricCell> cells_;  // stable addresses for handles
  std::map<std::string, MetricCell*, std::less<>> index_;
};

/// Convenience: registration that tolerates a null registry (the opt-out
/// path of every component's set_metrics).
[[nodiscard]] inline Counter make_counter(MetricsRegistry* reg,
                                          std::string id) {
  return reg != nullptr ? reg->counter(std::move(id)) : Counter{};
}
[[nodiscard]] inline Gauge make_gauge(MetricsRegistry* reg, std::string id) {
  return reg != nullptr ? reg->gauge(std::move(id)) : Gauge{};
}
[[nodiscard]] inline Histogram make_histogram(MetricsRegistry* reg,
                                              std::string id,
                                              std::vector<std::int64_t> b) {
  return reg != nullptr ? reg->histogram(std::move(id), std::move(b))
                        : Histogram{};
}

/// Quartile-style occupancy bounds for a buffer of `capacity` slots:
/// {cap/4, cap/2, 3cap/4, cap}, deduplicated for tiny capacities. Derived
/// from the capacity alone, so the bucket layout is deterministic.
[[nodiscard]] std::vector<std::int64_t> occupancy_bounds(
    std::int64_t capacity);

/// Power-of-two ladder {lo, 2lo, 4lo, ...} with `count` entries — the
/// default latency-style bucket layout (admission waits, service times).
[[nodiscard]] std::vector<std::int64_t> pow2_bounds(std::int64_t lo,
                                                    int count);

}  // namespace acc::obs
