#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace acc::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricCell* MetricsRegistry::insert(MetricKind kind, std::string id) {
  ACC_EXPECTS_MSG(!id.empty(), "metric ID must not be empty");
  ACC_EXPECTS_MSG(index_.find(id) == index_.end(),
                  "duplicate metric ID '" + id + "'");
  cells_.emplace_back();
  MetricCell* cell = &cells_.back();
  cell->kind = kind;
  cell->id = id;
  index_.emplace(std::move(id), cell);
  return cell;
}

Counter MetricsRegistry::counter(std::string id) {
  return Counter(insert(MetricKind::kCounter, std::move(id)));
}

Gauge MetricsRegistry::gauge(std::string id) {
  return Gauge(insert(MetricKind::kGauge, std::move(id)));
}

Histogram MetricsRegistry::histogram(std::string id,
                                     std::vector<std::int64_t> bounds) {
  ACC_EXPECTS_MSG(!bounds.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds.size(); ++i)
    ACC_EXPECTS_MSG(bounds[i] > bounds[i - 1],
                    "histogram bounds must be strictly increasing");
  MetricCell* cell = insert(MetricKind::kHistogram, std::move(id));
  cell->counts.assign(bounds.size() + 1, 0);
  cell->bounds = std::move(bounds);
  return Histogram(cell);
}

const MetricCell* MetricsRegistry::find(std::string_view id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : it->second;
}

std::string MetricsRegistry::snapshot_text() const {
  std::ostringstream os;
  // index_ iterates in ID order: the snapshot is canonical regardless of
  // registration order.
  for (const auto& [id, cell] : index_) {
    os << id << ' ' << metric_kind_name(cell->kind);
    switch (cell->kind) {
      case MetricKind::kCounter:
        os << ' ' << cell->value;
        break;
      case MetricKind::kGauge:
        os << " value=" << cell->value << " max=" << cell->max;
        break;
      case MetricKind::kHistogram: {
        os << " count=" << cell->count << " sum=" << cell->sum
           << " max=" << cell->max << " buckets=";
        for (std::size_t b = 0; b < cell->counts.size(); ++b) {
          if (b > 0) os << ',';
          if (b < cell->bounds.size())
            os << "le" << cell->bounds[b];
          else
            os << "inf";
          os << ':' << cell->counts[b];
        }
        break;
      }
    }
    os << '\n';
  }
  return os.str();
}

json::Value MetricsRegistry::snapshot_json() const {
  json::Object doc;
  for (const auto& [id, cell] : index_) {
    json::Object m;
    m["kind"] = metric_kind_name(cell->kind);
    switch (cell->kind) {
      case MetricKind::kCounter:
        m["value"] = cell->value;
        break;
      case MetricKind::kGauge:
        m["value"] = cell->value;
        m["max"] = cell->max;
        break;
      case MetricKind::kHistogram: {
        m["count"] = cell->count;
        m["sum"] = cell->sum;
        m["max"] = cell->max;
        json::Array buckets;
        for (std::size_t b = 0; b < cell->counts.size(); ++b) {
          json::Object bucket;
          if (b < cell->bounds.size())
            bucket["le"] = cell->bounds[b];
          else
            bucket["le"] = "inf";
          bucket["count"] = cell->counts[b];
          buckets.push_back(std::move(bucket));
        }
        m["buckets"] = std::move(buckets);
        break;
      }
    }
    doc[id] = std::move(m);
  }
  return doc;
}

std::vector<std::int64_t> occupancy_bounds(std::int64_t capacity) {
  ACC_EXPECTS(capacity >= 1);
  std::vector<std::int64_t> bounds = {capacity / 4, capacity / 2,
                                      (3 * capacity) / 4, capacity};
  bounds.erase(std::remove_if(bounds.begin(), bounds.end(),
                              [](std::int64_t b) { return b <= 0; }),
               bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

std::vector<std::int64_t> pow2_bounds(std::int64_t lo, int count) {
  ACC_EXPECTS(lo >= 1 && count >= 1 && count < 48);
  std::vector<std::int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) bounds.push_back(lo << i);
  return bounds;
}

}  // namespace acc::obs
