// End-of-run RunReport document: the machine-readable summary of one
// simulation, schema-pinned by common/bench_schema.hpp::validate_run_report
// (same style as the BENCH_*.json schemas).
//
// The core of the report is the per-stream margin table: for each stream,
// the OBSERVED maxima of the run (worst block service time, worst
// completion spacing — measured from the gateway trace by
// sharing::observe_streams) joined against the ANALYTIC bounds from
// sharing/analysis (Eq. 2 and Eq. 4 plus the modelled notification slack).
// margin = bound - observed; a fault-free run of a conforming system keeps
// every margin >= 0, which is exactly the conformance theorem rendered as
// data. The full metrics snapshot and the trace disposition ride along.
//
// Everything in the document is integers, strings and bools derived from
// simulation state — no wall-clock, no doubles — so a fixed configuration
// produces a byte-identical report (the golden-diff test relies on it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace acc::obs {

/// One stream's observed-vs-bound row pair.
struct RunReportStream {
  std::int64_t id = 0;
  std::string name;
  std::int64_t eta = 0;
  std::int64_t blocks = 0;
  /// Worst admit -> block.done service time observed; -1 = no block seen.
  std::int64_t service_observed = -1;
  /// Analytic bound on it: tau_hat + modelled slack (Eq. 2).
  std::int64_t service_bound = 0;
  /// Worst completion-to-completion gap observed while backlogged; -1 =
  /// fewer than two completions (starvation gaps are excluded upstream,
  /// mirroring the conformance checker).
  std::int64_t spacing_observed = -1;
  /// Analytic bound on it: max(gamma_hat, ceil(eta/mu)) + slack (Eq. 4).
  std::int64_t spacing_bound = 0;
};

/// Control-plane activity during the run (src/ctrl/): admission decisions,
/// cache effectiveness, and executed mode changes. A static workload
/// reports zeros — the section still appears so one schema covers every
/// report, dynamic or not.
struct RunReportAdmissions {
  std::int64_t accepts = 0;
  std::int64_t rejects = 0;
  std::int64_t cache_lookups = 0;
  std::int64_t cache_hits = 0;
  std::int64_t mode_changes = 0;
  std::int64_t reconfig_cycles = 0;
};

struct RunReportInput {
  std::string workload;
  /// Workload parameters worth pinning in the document (ints only).
  json::Object params;
  /// Real-time verdict fields (source_drops, sink_underruns, ...).
  json::Object verdict;
  std::vector<RunReportStream> streams;
  RunReportAdmissions admissions;
  std::int64_t cycles_run = 0;
  std::string stepper;  // "dense" | "global-horizon" | "wake-list"
};

/// Assemble the report document. `metrics` embeds the registry snapshot
/// (required — a report without observations joins nothing); `trace` adds
/// the event-count/truncation disposition when available.
[[nodiscard]] json::Value run_report_doc(const RunReportInput& in,
                                         const MetricsRegistry& metrics,
                                         const sim::TraceLog* trace);

}  // namespace acc::obs
