// Chrome trace-event exporter: renders a sim::TraceLog as the JSON Array
// Format that chrome://tracing and Perfetto load directly (see
// docs/observability.md for the how-to).
//
// Rendering rules:
//   - every trace source (component name) becomes its own track (tid),
//     labelled via a thread_name metadata event; tids are assigned in
//     first-appearance order, which is deterministic because the TraceLog
//     itself is;
//   - every TraceEvent becomes a thread-scoped instant event ("ph":"i") at
//     its cycle, with the payload in args.value — instants on one track are
//     monotone in ts because the log is recorded in cycle order;
//   - reconfig.start/reconfig.done pairs additionally become complete
//     duration events ("ph":"X") so context-switch windows render as bars;
//   - block.done and fault.* events feed cumulative counter series
//     ("ph":"C") on a dedicated counters track;
//   - a TRUNCATED log (events dropped at the TraceLog cap) ends with a
//     global instant event named "trace.truncated" carrying the dropped
//     count — the Chrome-format twin of the CSV truncation marker row, so
//     a clipped trace is visibly marked in both formats.
//
// Timestamps are simulation cycles emitted in the "ts" microsecond field:
// 1 cycle renders as 1 us, which keeps Perfetto's zoom ergonomics sane for
// cycle-accurate traces.
#pragma once

#include <string>

#include "common/json.hpp"
#include "sim/trace.hpp"

namespace acc::obs {

struct ChromeTraceOptions {
  /// Synthesize "X" duration events from reconfig.start/done pairs.
  bool durations = true;
  /// Emit cumulative counter series for block completions and faults.
  bool counters = true;
};

/// The trace document as a JSON value ({"traceEvents": [...], ...}).
[[nodiscard]] json::Value chrome_trace_doc(const sim::TraceLog& log,
                                           const ChromeTraceOptions& opt = {});

/// chrome_trace_doc serialized for writing to a .json file.
[[nodiscard]] std::string chrome_trace_json(const sim::TraceLog& log,
                                            const ChromeTraceOptions& opt = {});

}  // namespace acc::obs
