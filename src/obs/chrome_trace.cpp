#include "obs/chrome_trace.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace acc::obs {

namespace {

constexpr std::int64_t kPid = 0;
constexpr std::int64_t kCountersTid = 0;  // component tracks start at 1

json::Object meta_event(const std::string& name, std::int64_t tid,
                        const std::string& label) {
  json::Object e;
  e["name"] = name;
  e["ph"] = "M";
  e["pid"] = kPid;
  e["tid"] = tid;
  json::Object args;
  args["name"] = label;
  e["args"] = std::move(args);
  return e;
}

json::Object counter_event(const std::string& series, sim::Cycle ts,
                           std::int64_t value) {
  json::Object e;
  e["name"] = series;
  e["ph"] = "C";
  e["pid"] = kPid;
  e["tid"] = kCountersTid;
  e["ts"] = ts;
  json::Object args;
  args["value"] = value;
  e["args"] = std::move(args);
  return e;
}

}  // namespace

json::Value chrome_trace_doc(const sim::TraceLog& log,
                             const ChromeTraceOptions& opt) {
  json::Array events;
  events.push_back(meta_event("process_name", kCountersTid, "accshare-sim"));
  events.push_back(meta_event("thread_name", kCountersTid, "counters"));

  // Track (tid) per source, assigned in first-appearance order. The
  // TraceLog is deterministic for a given run, so so is this mapping.
  std::map<std::string, std::int64_t> tids;
  for (const sim::TraceEvent& e : log.events()) {
    if (tids.find(e.source) != tids.end()) continue;
    const auto tid = static_cast<std::int64_t>(tids.size()) + 1;
    tids.emplace(e.source, tid);
    events.push_back(meta_event("thread_name", tid, e.source));
  }

  // Open reconfig window per source (reconfig.start awaiting its done).
  std::map<std::string, sim::Cycle> open_reconfig;
  // Open mode-change transition per source (the control plane's
  // modechange.start/done pair, source "ctrl").
  std::map<std::string, sim::Cycle> open_modechange;
  std::int64_t blocks_done = 0;
  std::int64_t faults_seen = 0;

  for (const sim::TraceEvent& e : log.events()) {
    const std::int64_t tid = tids.at(e.source);
    json::Object inst;
    inst["name"] = e.event;
    inst["ph"] = "i";
    inst["s"] = "t";  // thread-scoped instant
    inst["pid"] = kPid;
    inst["tid"] = tid;
    inst["ts"] = e.cycle;
    json::Object args;
    args["value"] = e.value;
    inst["args"] = std::move(args);
    events.push_back(std::move(inst));

    if (opt.durations) {
      if (e.event == "reconfig.start") {
        open_reconfig[e.source] = e.cycle;
      } else if (e.event == "reconfig.done") {
        const auto it = open_reconfig.find(e.source);
        if (it != open_reconfig.end()) {
          json::Object dur;
          dur["name"] = "reconfig";
          dur["ph"] = "X";
          dur["pid"] = kPid;
          dur["tid"] = tid;
          dur["ts"] = it->second;
          dur["dur"] = e.cycle - it->second;
          json::Object dargs;
          dargs["stream"] = e.value;
          dur["args"] = std::move(dargs);
          events.push_back(std::move(dur));
          open_reconfig.erase(it);
        }
      } else if (e.event == "modechange.start") {
        open_modechange[e.source] = e.cycle;
      } else if (e.event == "modechange.done") {
        const auto it = open_modechange.find(e.source);
        if (it != open_modechange.end()) {
          json::Object dur;
          dur["name"] = "modechange";
          dur["ph"] = "X";
          dur["pid"] = kPid;
          dur["tid"] = tid;
          dur["ts"] = it->second;
          dur["dur"] = e.cycle - it->second;
          json::Object dargs;
          dargs["stream"] = e.value;
          dur["args"] = std::move(dargs);
          events.push_back(std::move(dur));
          open_modechange.erase(it);
        }
      }
    }
    if (opt.counters) {
      if (e.event == "block.done")
        events.push_back(counter_event("blocks.done", e.cycle, ++blocks_done));
      else if (e.event.rfind("fault.", 0) == 0)
        events.push_back(counter_event("faults", e.cycle, ++faults_seen));
    }
  }

  // CSV emits a truncation marker row; the Chrome export marks the clip
  // with a global instant so Perfetto users see it too.
  if (log.truncated()) {
    const sim::Cycle last =
        log.events().empty() ? 0 : log.events().back().cycle;
    json::Object trunc;
    trunc["name"] = "trace.truncated";
    trunc["ph"] = "i";
    trunc["s"] = "g";  // global-scoped instant: spans every track
    trunc["pid"] = kPid;
    trunc["tid"] = kCountersTid;
    trunc["ts"] = last;
    json::Object args;
    args["dropped"] = static_cast<std::int64_t>(log.dropped());
    trunc["args"] = std::move(args);
    events.push_back(std::move(trunc));
  }

  json::Object doc;
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = std::move(events);
  return doc;
}

std::string chrome_trace_json(const sim::TraceLog& log,
                              const ChromeTraceOptions& opt) {
  return chrome_trace_doc(log, opt).pretty() + "\n";
}

}  // namespace acc::obs
