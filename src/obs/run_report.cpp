#include "obs/run_report.hpp"

namespace acc::obs {

namespace {

json::Object margin_cell(std::int64_t observed, std::int64_t bound) {
  json::Object cell;
  cell["observed"] = observed;
  cell["bound"] = bound;
  // Nothing observed (-1) trivially respects the bound: report the full
  // bound as margin so the "every margin >= 0" invariant reads uniformly.
  cell["margin"] = observed < 0 ? bound : bound - observed;
  return cell;
}

}  // namespace

json::Value run_report_doc(const RunReportInput& in,
                           const MetricsRegistry& metrics,
                           const sim::TraceLog* trace) {
  json::Object doc;
  doc["report"] = "run";
  doc["version"] = 1;
  doc["workload"] = in.workload;
  doc["params"] = in.params;
  doc["cycles_run"] = in.cycles_run;
  doc["stepper"] = in.stepper;
  doc["verdict"] = in.verdict;

  json::Array streams;
  for (const RunReportStream& s : in.streams) {
    json::Object row;
    row["id"] = s.id;
    row["stream"] = s.name;
    row["eta"] = s.eta;
    row["blocks"] = s.blocks;
    row["service"] = margin_cell(s.service_observed, s.service_bound);
    row["spacing"] = margin_cell(s.spacing_observed, s.spacing_bound);
    streams.push_back(std::move(row));
  }
  doc["streams"] = std::move(streams);

  json::Object adm;
  adm["accepts"] = in.admissions.accepts;
  adm["rejects"] = in.admissions.rejects;
  adm["cache_lookups"] = in.admissions.cache_lookups;
  adm["cache_hits"] = in.admissions.cache_hits;
  adm["mode_changes"] = in.admissions.mode_changes;
  adm["reconfig_cycles"] = in.admissions.reconfig_cycles;
  doc["admissions"] = std::move(adm);

  doc["metrics"] = metrics.snapshot_json();

  json::Object tr;
  if (trace != nullptr) {
    tr["events"] = static_cast<std::int64_t>(trace->events().size());
    tr["dropped"] = static_cast<std::int64_t>(trace->dropped());
    tr["truncated"] = trace->truncated();
  } else {
    tr["events"] = 0;
    tr["dropped"] = 0;
    tr["truncated"] = false;
  }
  doc["trace"] = std::move(tr);
  return doc;
}

}  // namespace acc::obs
