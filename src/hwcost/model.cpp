#include "hwcost/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace acc::hwcost {

std::string component_name(Component c) {
  switch (c) {
    case Component::kFirDownsampler: return "FIR + down-sampler";
    case Component::kMicroBlaze: return "MicroBlaze";
    case Component::kCordic: return "CORDIC";
    case Component::kEntryGateway: return "Entry-gateway";
    case Component::kExitGateway: return "Exit-gateway";
    case Component::kGatewayPair: return "Entry- + Exit-gateway";
  }
  return "?";
}

FpgaCost published_cost(Component c) {
  // Table I verbatim: gateway pair, FIR+DS, CORDIC. The pair's split into
  // entry/exit/MicroBlaze is reconstructed (Fig. 11's bars are published
  // only as a chart); the parts sum exactly to the published pair.
  switch (c) {
    case Component::kGatewayPair: return {3788, 4445};
    case Component::kEntryGateway: return {2830, 3350};
    case Component::kExitGateway: return {958, 1095};
    case Component::kMicroBlaze: return {2450, 2900};
    case Component::kFirDownsampler: return {6512, 10837};
    case Component::kCordic: return {1714, 1882};
  }
  throw precondition_error("unknown component");
}

FpgaCost StructuralEstimate::to_cost(const PackingModel& pm) const {
  const double by_lut = static_cast<double>(luts) / pm.lut_per_slice;
  const double by_ff = static_cast<double>(ffs) / pm.ff_per_slice;
  return {static_cast<std::int64_t>(std::llround(std::max(by_lut, by_ff))),
          luts};
}

StructuralEstimate estimate_cordic(int iterations, int width) {
  ACC_EXPECTS(iterations >= 1 && width >= 8);
  StructuralEstimate e;
  // Per micro-rotation stage: add/sub for x, y and the angle accumulator
  // (one LUT per bit each — the add/sub select folds into the same LUT6),
  // barrel shifts are pure routing in an unrolled pipeline.
  e.luts = static_cast<std::int64_t>(iterations) * 3 * width;
  // Gain-compensation multiplier (LUT fabric) and I/O staging.
  e.luts += 350;
  // Three pipeline registers per stage plus interface registers.
  e.ffs = static_cast<std::int64_t>(iterations) * 3 * width + 128;
  return e;
}

StructuralEstimate estimate_fir(int taps, int width) {
  ACC_EXPECTS(taps >= 1 && width >= 8);
  StructuralEstimate e;
  // Complex MAC per tap: 4 real multipliers + 2 adders. The published area
  // implies fabric multipliers of ~width x coefficient-width; 72 LUTs per
  // 16x18 multiplier matches Virtex-6 fabric synthesis.
  const std::int64_t mult_luts = 72;
  e.luts = static_cast<std::int64_t>(taps) * (4 * mult_luts + 2 * width);
  // Accumulator tree, coefficient memory addressing, decimation control.
  e.luts += 40 * width + 180;
  // Delay line in registers (complex, both I and Q) + pipeline regs.
  e.ffs = static_cast<std::int64_t>(taps) * 2 * width + 6 * width;
  return e;
}

StructuralEstimate estimate_microblaze() {
  StructuralEstimate e;
  // Area-optimized 32-bit RISC: regfile read logic (LUTRAM) 250, ALU 350,
  // barrel shifter 250, decoder 400, pipeline control 300, cache control
  // 500, LMB/PLB bus interfaces 600, multiplier 250.
  e.luts = 250 + 350 + 250 + 400 + 300 + 500 + 600 + 250;
  e.ffs = 2200;
  return e;
}

StructuralEstimate estimate_dma() {
  StructuralEstimate e;
  // Two 32-bit address generators, a length counter, FIFO handshake and a
  // bus interface.
  e.luts = 2 * 64 + 40 + 90 + 160;
  e.ffs = 300;
  return e;
}

StructuralEstimate estimate_ring_ni() {
  StructuralEstimate e;
  // Slot compare/eject, injection queue control, credit counters.
  e.luts = 350;
  e.ffs = 280;
  return e;
}

StructuralEstimate estimate_dual_ring(int nodes, int width) {
  ACC_EXPECTS(nodes >= 2 && width >= 8);
  StructuralEstimate e;
  // Per node and per ring: a slot register (width + header), an eject
  // comparator, and injection mux; plus the per-tile NI. Two rings.
  const std::int64_t per_node_per_ring = width + 16 /*hdr*/ + 24 /*cmp+mux*/;
  e.luts = static_cast<std::int64_t>(nodes) *
           (2 * per_node_per_ring + estimate_ring_ni().luts);
  e.ffs = static_cast<std::int64_t>(nodes) *
          (2 * (width + 16) + estimate_ring_ni().ffs);
  return e;
}

StructuralEstimate estimate_tdm_crossbar(int nodes, int width) {
  ACC_EXPECTS(nodes >= 2 && width >= 8);
  StructuralEstimate e;
  // Each output port selects among `nodes` inputs: a width-wide
  // nodes-to-1 mux costs ~width * (nodes-1) / 2 LUT6s (2 mux2 per LUT),
  // plus the TDM slot table and per-port control.
  const std::int64_t mux_luts =
      static_cast<std::int64_t>(width) * (nodes - 1) / 2 + 1;
  const std::int64_t slot_table = 8 * nodes;  // schedule storage addressing
  e.luts = static_cast<std::int64_t>(nodes) * (mux_luts + slot_table + 40);
  // Output registers + schedule counters.
  e.ffs = static_cast<std::int64_t>(nodes) * (width + 32);
  return e;
}

std::vector<InterconnectComparison> compare_interconnects(
    const std::vector<int>& node_counts) {
  std::vector<InterconnectComparison> out;
  out.reserve(node_counts.size());
  for (int n : node_counts) {
    InterconnectComparison c;
    c.nodes = n;
    c.ring = estimate_dual_ring(n).to_cost();
    c.crossbar = estimate_tdm_crossbar(n).to_cost();
    c.crossbar_over_ring = static_cast<double>(c.crossbar.luts) /
                           static_cast<double>(c.ring.luts);
    out.push_back(c);
  }
  return out;
}

SharingComparison compare_sharing(
    const std::vector<AcceleratorDemand>& demands) {
  ACC_EXPECTS(!demands.empty());
  SharingComparison out;
  for (const AcceleratorDemand& d : demands) {
    ACC_EXPECTS(d.copies_needed >= 1);
    out.non_shared = out.non_shared + d.copies_needed * published_cost(d.type);
    out.shared = out.shared + published_cost(d.type);
  }
  out.shared = out.shared + published_cost(Component::kGatewayPair);
  out.savings = {out.non_shared.slices - out.shared.slices,
                 out.non_shared.luts - out.shared.luts};
  out.slice_saving_pct = 100.0 * static_cast<double>(out.savings.slices) /
                         static_cast<double>(out.non_shared.slices);
  out.lut_saving_pct = 100.0 * static_cast<double>(out.savings.luts) /
                       static_cast<double>(out.non_shared.luts);
  return out;
}

SharingComparison paper_case_study() {
  return compare_sharing({{Component::kFirDownsampler, 4},
                          {Component::kCordic, 4}});
}

}  // namespace acc::hwcost
