// FPGA hardware-cost model (substitute for Virtex-6 synthesis, see
// DESIGN.md).
//
// Two layers:
//  1. PUBLISHED component costs — the paper's own measurements (its Table I
//     and Fig. 11). Composition over these regenerates Table I exactly.
//  2. STRUCTURAL estimators — first-principles LUT/FF counts from the
//     datapath structure (CORDIC stages, FIR MAC array, ...), mapped to
//     slices with a Virtex-6 packing model. Tests check the estimators land
//     within engineering distance of the published numbers, which validates
//     using the model for what-if composition (more streams, wider chains).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace acc::hwcost {

/// Resource vector on a Virtex-6-class FPGA.
struct FpgaCost {
  std::int64_t slices = 0;
  std::int64_t luts = 0;

  friend FpgaCost operator+(FpgaCost a, FpgaCost b) {
    return {a.slices + b.slices, a.luts + b.luts};
  }
  friend FpgaCost operator*(std::int64_t n, FpgaCost c) {
    return {n * c.slices, n * c.luts};
  }
  friend bool operator==(FpgaCost a, FpgaCost b) = default;
};

/// The components the paper reports (its Fig. 11 / Table I).
enum class Component {
  kFirDownsampler,  // 33-tap complex FIR + programmable down-sampler
  kMicroBlaze,      // RISC core of processor tiles / entry-gateway
  kCordic,          // CORDIC accelerator
  kEntryGateway,    // MicroBlaze + DMA + C-FIFO memory + config-bus master
  kExitGateway,     // hardware DMA converting HW to SW flow control
  kGatewayPair,     // entry + exit together (Table I row 1)
};

[[nodiscard]] std::string component_name(Component c);

/// The paper's published cost of a component. kEntryGateway/kExitGateway/
/// kMicroBlaze are a reconstruction consistent with the published pair
/// total (the scanned Fig. 11 bars are not legible to single-slice
/// precision); kGatewayPair, kFirDownsampler and kCordic are verbatim from
/// Table I.
[[nodiscard]] FpgaCost published_cost(Component c);

// ---- Structural estimators ----

/// Virtex-6 packing: a slice holds 4 LUT6s and 8 FFs, but placement,
/// routing and control sets keep real designs far from full packing.
struct PackingModel {
  double lut_per_slice = 2.9;  // effective LUTs packed per slice
  double ff_per_slice = 5.0;   // effective FFs packed per slice
};

struct StructuralEstimate {
  std::int64_t luts = 0;
  std::int64_t ffs = 0;

  [[nodiscard]] FpgaCost to_cost(const PackingModel& pm = {}) const;
};

/// Unrolled CORDIC pipeline: per stage two W-bit add/sub datapaths for
/// x/y, one for the angle, plus the shifter muxes and stage registers.
[[nodiscard]] StructuralEstimate estimate_cordic(int iterations, int width);

/// Complex FIR with down-sampler: `taps` complex MACs (4 mults + 2 adds
/// each in LUT fabric — the paper's area numbers imply LUT-based
/// multipliers), coefficient storage and the decimation counter.
[[nodiscard]] StructuralEstimate estimate_fir(int taps, int width);

/// MicroBlaze-class 32-bit RISC with caches' control (area-optimized).
[[nodiscard]] StructuralEstimate estimate_microblaze();

/// Simple DMA engine (address generators + FIFO interface).
[[nodiscard]] StructuralEstimate estimate_dma();

/// Ring network interface with credit-based flow control.
[[nodiscard]] StructuralEstimate estimate_ring_ni();

// ---- Interconnect scaling (the paper's related-work cost argument) ----

/// Full dual-ring interconnect for `nodes` tiles (data ring + credit ring +
/// one NI per tile): cost grows LINEARLY in the node count — the reason the
/// paper uses the ring of refs [11]/[14].
[[nodiscard]] StructuralEstimate estimate_dual_ring(int nodes,
                                                    int width = 64);

/// Point-to-point switch/crossbar with a pre-computed TDM schedule
/// (PROPHID [9] / Aethereal-style [13]): crosspoint muxes grow
/// QUADRATICALLY in the node count.
[[nodiscard]] StructuralEstimate estimate_tdm_crossbar(int nodes,
                                                       int width = 64);

struct InterconnectComparison {
  int nodes = 0;
  FpgaCost ring;
  FpgaCost crossbar;
  double crossbar_over_ring = 0.0;  // LUT ratio
};

/// Ring vs crossbar across system sizes.
[[nodiscard]] std::vector<InterconnectComparison> compare_interconnects(
    const std::vector<int>& node_counts);

// ---- Composition (Table I) ----

/// One accelerator type that the application instantiates `copies_needed`
/// times when not shared.
struct AcceleratorDemand {
  Component type = Component::kCordic;
  std::int64_t copies_needed = 1;
};

struct SharingComparison {
  FpgaCost non_shared;  // copies_needed instances of every accelerator
  FpgaCost shared;      // one instance of each + one gateway pair
  FpgaCost savings;
  double slice_saving_pct = 0.0;
  double lut_saving_pct = 0.0;
};

/// The Table I computation: dedicated copies vs gateway-shared single
/// instances.
[[nodiscard]] SharingComparison compare_sharing(
    const std::vector<AcceleratorDemand>& demands);

/// The paper's exact scenario: 4x (FIR+DS) + 4x CORDIC vs shared.
[[nodiscard]] SharingComparison paper_case_study();

}  // namespace acc::hwcost
